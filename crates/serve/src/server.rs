//! The HTTP server: accept loop, routing, backpressure, graceful drain.
//!
//! One thread polls a non-blocking listener; each accepted connection gets
//! a handler thread (bounded — over the cap the server answers 503 without
//! reading the request). Load-shedding happens at submission: once pending
//! plus running jobs reach `queue_cap` the server answers 429 with
//! `Retry-After`, *except* for specs already in the cache, which cost no
//! worker time and are always served. Shutdown (a signal, or
//! [`ServerHandle::shutdown`]) stops accepting, drains the queue — workers
//! checkpoint in-flight jobs — and joins everything before returning.
//!
//! ## Endpoints
//!
//! | Method/path | Purpose |
//! |---|---|
//! | `POST /v1/jobs` | submit a spec (`X-Tenant` header names the tenant) |
//! | `GET /v1/jobs/<id>` | submission status |
//! | `GET /v1/jobs/<id>/result` | finished observables (JSONL) |
//! | `GET /v1/jobs/<id>/stream` | chunked JSONL, tailing a running job |
//! | `GET /v1/results/<key>` | cache lookup by content address |
//! | `GET /metrics` | registry snapshot (text) |
//! | `GET /healthz` | liveness |

use crate::cache::ResultCache;
use crate::http::{self, Parse, Request};
use crate::queue::{JobState, Queue};
use crate::request::JobRequest;
use crate::worker::{self, Ctx};
use psr_engine::{CheckpointStore, Journal, JsonLine, Registry};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server settings.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a random port).
    pub addr: String,
    /// State directory: queue journal, checkpoints, partials, cache.
    pub state_dir: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// High-water mark: submissions past this many in-flight jobs get 429.
    pub queue_cap: usize,
    /// Result cache budget in bytes.
    pub cache_bytes: u64,
    /// Largest accepted lattice side.
    pub max_side: u32,
    /// Largest accepted step count.
    pub max_steps: u64,
    /// Concurrent connection cap (beyond it: 503 and close).
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            state_dir: PathBuf::from("serve-state"),
            workers: 2,
            queue_cap: 64,
            cache_bytes: 64 << 20,
            max_side: 512,
            max_steps: 1_000_000,
            max_connections: 64,
        }
    }
}

/// A started server: bound address plus the handle to stop it.
pub struct ServerHandle {
    /// The actual bound address (port resolved).
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// Request shutdown: drain the queue (checkpointing in-flight jobs)
    /// and stop accepting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Request shutdown and wait for the drain to finish.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        let _ = self.thread.join();
    }

    /// Wait for the server to exit (e.g. after an external signal).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Bind, recover state, spawn workers, and serve until shutdown.
///
/// `external_stop` is polled alongside the handle's own flag so a process
/// signal handler can drive the drain; pass a never-set flag when unused.
///
/// # Errors
///
/// Bind/state-directory I/O errors. Everything after a successful return is
/// reported through the journal and `/metrics`.
pub fn start(cfg: ServerConfig, external_stop: Arc<AtomicBool>) -> std::io::Result<ServerHandle> {
    std::fs::create_dir_all(&cfg.state_dir)?;
    let partials = cfg.state_dir.join("partials");
    std::fs::create_dir_all(&partials)?;
    let ctx = Arc::new(Ctx {
        queue: Queue::open(&cfg.state_dir.join("queue.jsonl"))?,
        cache: ResultCache::open(&cfg.state_dir.join("cache"), cfg.cache_bytes)?,
        store: CheckpointStore::open(&cfg.state_dir.join("ckpts"))?,
        journal: Journal::append(&cfg.state_dir.join("serve.jsonl"))?,
        metrics: Registry::new(),
        cancel: AtomicBool::new(false),
        partials,
    });
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    // Random-port discovery for scripts and tests.
    std::fs::write(cfg.state_dir.join("addr"), addr.to_string())?;
    ctx.journal.log(
        JsonLine::event("serve_start")
            .str("addr", &addr.to_string())
            .u64("workers", cfg.workers as u64)
            .u64("queue_cap", cfg.queue_cap as u64)
            .u64("recovered_jobs", ctx.queue.in_flight() as u64),
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    let thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("psr-serve-accept".to_owned())
            .spawn(move || accept_loop(listener, cfg, ctx, shutdown, external_stop))
            .expect("spawn accept loop")
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        thread,
    })
}

fn accept_loop(
    listener: TcpListener,
    cfg: ServerConfig,
    ctx: Arc<Ctx>,
    shutdown: Arc<AtomicBool>,
    external_stop: Arc<AtomicBool>,
) {
    let workers = worker::spawn_workers(cfg.workers, &ctx);
    let connections = Arc::new(AtomicUsize::new(0));
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !(shutdown.load(Ordering::SeqCst) || external_stop.load(Ordering::SeqCst)) {
        match listener.accept() {
            Ok((stream, _)) => {
                ctx.metrics.counter("serve.connections").add(1);
                if connections.load(Ordering::SeqCst) >= cfg.max_connections {
                    ctx.metrics.counter("serve.shed_503").add(1);
                    let _ = respond_oneshot(stream, 503, b"connection limit reached\n");
                    continue;
                }
                connections.fetch_add(1, Ordering::SeqCst);
                let ctx = Arc::clone(&ctx);
                let cfg = cfg.clone();
                let connections = Arc::clone(&connections);
                let h = std::thread::Builder::new()
                    .name("psr-serve-conn".to_owned())
                    .spawn(move || {
                        handle_connection(stream, &cfg, &ctx);
                        connections.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn handler");
                handlers.push(h);
                handlers.retain(|h| !h.is_finished());
            }
            // Short poll: this sleep bounds connection-accept latency,
            // which is the floor under every cache-hit response.
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Graceful drain: interrupt running jobs at their next checkpoint,
    // stop the workers, then journal the shutdown.
    ctx.cancel.store(true, Ordering::SeqCst);
    ctx.queue.drain();
    for w in workers {
        let _ = w.join();
    }
    for h in handlers {
        let _ = h.join();
    }
    ctx.journal
        .log(JsonLine::event("serve_stop").u64("in_flight", ctx.queue.in_flight() as u64));
}

fn respond_oneshot(mut stream: TcpStream, status: u16, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&http::response(
        status,
        &[("content-type", "text/plain")],
        body,
    ))
}

/// Read one request off the stream (bounded size, bounded time). `buf`
/// persists across requests on a keep-alive connection — a pipelined
/// second request's bytes stay buffered for the next call. `Ok(None)` is
/// a clean close (EOF or idle timeout between requests).
fn read_request(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<Option<Request>, String> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut chunk = [0u8; 4096];
    loop {
        match crate::http::parse_request(buf)? {
            Parse::Complete(req, consumed) => {
                buf.drain(..consumed);
                return Ok(Some(req));
            }
            Parse::Partial => {}
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return Ok(None),
            Ok(0) => return Err("connection closed mid-request".to_owned()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // An idle keep-alive connection timing out between requests is
            // a clean close, not a protocol error.
            Err(_) if buf.is_empty() => return Ok(None),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}

/// Serve requests off one connection until the peer closes, asks to
/// close, errors, or takes a streamed response (which advertises
/// `Connection: close`).
fn handle_connection(mut stream: TcpStream, cfg: &ServerConfig, ctx: &Ctx) {
    let mut buf = Vec::new();
    loop {
        let req = match read_request(&mut stream, &mut buf) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(e) => {
                let _ = stream.write_all(&http::response(
                    400,
                    &[("content-type", "text/plain")],
                    format!("{e}\n").as_bytes(),
                ));
                return;
            }
        };
        ctx.metrics.counter("serve.http_requests").add(1);
        let t0 = Instant::now();
        let close = req
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let out = route(&req, &mut stream, cfg, ctx);
        ctx.metrics
            .histogram("serve.request_us")
            .record(t0.elapsed().as_micros() as u64);
        match out {
            Some(bytes) => {
                if stream.write_all(&bytes).is_err() {
                    return;
                }
            }
            None => return, // streamed chunked response; it closes
        }
        if close {
            return;
        }
    }
}

fn json_response(status: u16, line: JsonLine) -> Vec<u8> {
    let mut body = line.finish();
    body.push('\n');
    http::response(
        status,
        &[("content-type", "application/json")],
        body.as_bytes(),
    )
}

fn error_response(status: u16, msg: &str) -> Vec<u8> {
    json_response(status, JsonLine::object().str("error", msg))
}

fn job_status_line(job: &crate::queue::Job, ctx: &Ctx) -> JsonLine {
    let mut line = JsonLine::object()
        .u64("id", job.id)
        .str("key", &job.key)
        .str("tenant", &job.tenant)
        .str("status", job.state.as_str());
    if let JobState::Failed(msg) = &job.state {
        line = line.str("error", msg);
    }
    // The runner publishes per-job progress as a gauge named by the key.
    let step = ctx.metrics.gauge(&format!("job.{}.step", job.key)).get();
    if step > 0.0 {
        line = line.u64("step", step as u64);
    }
    line
}

/// Dispatch one request. Returns the response bytes, or `None` when the
/// handler streamed its response itself.
fn route(req: &Request, stream: &mut TcpStream, cfg: &ServerConfig, ctx: &Ctx) -> Option<Vec<u8>> {
    let path = req.path().to_owned();
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    Some(match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => http::response(200, &[("content-type", "text/plain")], b"ok\n"),
        ("GET", ["metrics"]) => render_metrics(ctx),
        ("POST", ["v1", "jobs"]) => submit(req, cfg, ctx),
        ("GET", ["v1", "jobs", id]) => {
            match id.parse::<u64>().ok().and_then(|i| ctx.queue.status(i)) {
                Some(job) => json_response(200, job_status_line(&job, ctx)),
                None => error_response(404, "no such job"),
            }
        }
        ("GET", ["v1", "jobs", id, "result"]) => {
            match id.parse::<u64>().ok().and_then(|i| ctx.queue.status(i)) {
                Some(job) => match &job.state {
                    JobState::Done => match ctx.cache.get(&job.key) {
                        Some(bytes) => {
                            ctx.metrics.counter("serve.hits").add(1);
                            http::response(200, &[("content-type", "application/jsonl")], &bytes)
                        }
                        // Done but evicted: the spec still reproduces it.
                        None => error_response(410, "result evicted; resubmit to regenerate"),
                    },
                    JobState::Failed(msg) => error_response(500, msg),
                    _ => error_response(404, "not finished"),
                },
                None => error_response(404, "no such job"),
            }
        }
        ("GET", ["v1", "jobs", id, "stream"]) => {
            match id.parse::<u64>().ok().and_then(|i| ctx.queue.status(i)) {
                Some(job) => {
                    stream_job(stream, ctx, job.id);
                    return None;
                }
                None => error_response(404, "no such job"),
            }
        }
        ("GET", ["v1", "results", key]) => {
            if key.len() != 64 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
                error_response(400, "keys are 64 hex chars")
            } else {
                match ctx.cache.get(key) {
                    Some(bytes) => {
                        ctx.metrics.counter("serve.hits").add(1);
                        http::response(200, &[("content-type", "application/jsonl")], &bytes)
                    }
                    None => {
                        ctx.metrics.counter("serve.misses").add(1);
                        error_response(404, "not cached")
                    }
                }
            }
        }
        ("GET" | "POST", _) => error_response(404, "no such endpoint"),
        _ => error_response(405, "method not allowed"),
    })
}

fn submit(req: &Request, cfg: &ServerConfig, ctx: &Ctx) -> Vec<u8> {
    if ctx.queue.is_draining() {
        return error_response(503, "server is draining");
    }
    let tenant = req
        .header("x-tenant")
        .or_else(|| req.query_param("tenant"))
        .unwrap_or("anon")
        .to_owned();
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return error_response(400, "body must be UTF-8");
    };
    let job = match JobRequest::parse(body) {
        Ok(j) => j,
        Err(e) => return error_response(400, &e),
    };
    if job.side > cfg.max_side {
        return error_response(
            400,
            &format!("side {} exceeds cap {}", job.side, cfg.max_side),
        );
    }
    if job.steps > cfg.max_steps {
        return error_response(
            400,
            &format!("steps {} exceeds cap {}", job.steps, cfg.max_steps),
        );
    }
    let key = job.cache_key();
    // Cache hits bypass load-shedding: they cost no worker time.
    if ctx.cache.contains(&key) {
        ctx.metrics.counter("serve.hits").add(1);
        return match ctx.queue.submit_done(&tenant, &job) {
            Ok(id) => json_response(
                200,
                JsonLine::object()
                    .u64("id", id)
                    .str("key", &key)
                    .str("status", "done")
                    .bool("cached", true),
            ),
            Err(e) => error_response(500, &format!("journal: {e}")),
        };
    }
    if ctx.queue.in_flight() >= cfg.queue_cap {
        ctx.metrics.counter("serve.shed_429").add(1);
        let mut body = JsonLine::object()
            .str("error", "queue is full; retry later")
            .finish();
        body.push('\n');
        return http::response(
            429,
            &[("content-type", "application/json"), ("retry-after", "1")],
            body.as_bytes(),
        );
    }
    ctx.metrics.counter("serve.misses").add(1);
    match ctx.queue.submit(&tenant, &job) {
        Ok(id) => {
            ctx.metrics.counter("serve.submitted").add(1);
            ctx.metrics
                .gauge("serve.queue_depth")
                .set(ctx.queue.in_flight() as f64);
            json_response(
                202,
                JsonLine::object()
                    .u64("id", id)
                    .str("key", &key)
                    .str("status", "pending")
                    .bool("cached", false),
            )
        }
        Err(e) => error_response(500, &format!("journal: {e}")),
    }
}

/// Tail a job's observables as chunked JSONL until it finishes (or a
/// 60 s safety timeout).
fn stream_job(stream: &mut TcpStream, ctx: &Ctx, id: u64) {
    let _ = stream.write_all(&http::chunked_head(
        200,
        &[("content-type", "application/jsonl")],
    ));
    let mut sent = 0usize;
    let deadline = Instant::now() + Duration::from_secs(60);
    while let Some(job) = ctx.queue.status(id) {
        let finished = matches!(job.state, JobState::Done | JobState::Failed(_));
        // Once done the partial has moved into the cache; prefer it.
        let bytes = if job.state == JobState::Done {
            ctx.cache.get(&job.key).unwrap_or_default()
        } else {
            ctx.partial(&job.key).read().unwrap_or_default()
        };
        if bytes.len() > sent && stream.write_all(&http::chunk(&bytes[sent..])).is_err() {
            return; // client went away
        }
        sent = sent.max(bytes.len());
        if finished || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let _ = stream.write_all(http::last_chunk());
}

fn render_metrics(ctx: &Ctx) -> Vec<u8> {
    ctx.metrics
        .gauge("serve.queue_depth")
        .set(ctx.queue.in_flight() as f64);
    let (entries, bytes) = ctx.cache.stats();
    ctx.metrics.gauge("serve.cache_entries").set(entries as f64);
    ctx.metrics.gauge("serve.cache_bytes").set(bytes as f64);
    let snap = ctx.metrics.snapshot();
    let mut out = String::new();
    for (k, v) in &snap.counters {
        out.push_str(&format!("c.{k} {v}\n"));
    }
    for (k, v) in &snap.gauges {
        out.push_str(&format!("g.{k} {v}\n"));
    }
    for (k, s) in &snap.histograms {
        out.push_str(&format!(
            "h.{k} count={} p50={} p95={} p99={}\n",
            s.count, s.p50, s.p95, s.p99
        ));
    }
    http::response(200, &[("content-type", "text/plain")], out.as_bytes())
}
