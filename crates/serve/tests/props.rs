//! Property tests for the HTTP parser and spec canonicalization.
//!
//! The parser faces arbitrary network bytes, so its contract is "never
//! panic, never mis-frame": any byte soup yields `Ok`/`Err`, any prefix of
//! a valid request is `Partial` or an error (never a bogus `Complete`), and
//! `render ∘ parse` is the identity on the requests the client builds.
//!
//! Canonicalization carries the cache's correctness: submissions that mean
//! the same job (reordered keys, noise whitespace, comments, spelled-out
//! defaults) must hash identically, and submissions differing in any
//! semantic field — seed above all — must not.

use proptest::prelude::*;
use psr_serve::http::{parse_request, Parse, Request};
use psr_serve::request::JobRequest;

/// Token-name alphabet for generated methods and header names.
fn token(picks: &[usize], alphabet: &[u8]) -> String {
    picks
        .iter()
        .map(|&i| alphabet[i % alphabet.len()] as char)
        .collect()
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..2048usize),
    ) {
        let _ = parse_request(&bytes); // Ok or Err — never a panic
    }

    #[test]
    fn complete_parses_stay_within_the_buffer(
        bytes in prop::collection::vec(0u8..=255, 0..2048usize),
    ) {
        if let Ok(Parse::Complete(_, consumed)) = parse_request(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    #[test]
    fn render_parse_roundtrip(
        method_picks in prop::collection::vec(0usize..26, 1..8usize),
        path_picks in prop::collection::vec(0usize..37, 0..24usize),
        name_picks in prop::collection::vec(0usize..37, 1..16usize),
        value_picks in prop::collection::vec(0usize..95, 0..32usize),
        body in prop::collection::vec(0u8..=255, 0..256usize),
    ) {
        let method = token(&method_picks, b"ABCDEFGHIJKLMNOPQRSTUVWXYZ");
        let path = format!(
            "/{}",
            token(&path_picks, b"abcdefghijklmnopqrstuvwxyz0123456789/")
        );
        // Header names start with a letter so they can't collide with the
        // framing headers render() synthesises (content-length), and can't
        // be transfer-encoding (no 'x-' prefix there) — force the prefix.
        let header_name = format!(
            "x-{}",
            token(&name_picks, b"abcdefghijklmnopqrstuvwxyz0123456789-")
        );
        // Printable ASCII values, trimmed the way the parser trims them.
        let header_value: String = value_picks
            .iter()
            .map(|&i| (b' ' + (i % 95) as u8) as char)
            .collect();
        let header_value = header_value.trim().to_owned();
        let req = Request {
            method: method.clone(),
            target: path.clone(),
            headers: vec![(header_name.clone(), header_value.clone())],
            body: body.clone(),
        };
        let wire = req.render();
        let parsed = parse_request(&wire).expect("rendered request must parse");
        let Parse::Complete(back, consumed) = parsed else {
            panic!("rendered request must be complete");
        };
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(back.method, method);
        prop_assert_eq!(back.target, path);
        prop_assert_eq!(back.header(&header_name), Some(header_value.as_str()));
        prop_assert_eq!(back.body, body);
    }

    #[test]
    fn prefixes_of_valid_requests_never_misparse(cut in 0usize..64) {
        let wire = b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let cut = cut.min(wire.len());
        match parse_request(&wire[..cut]) {
            Ok(Parse::Partial) | Err(_) => {}
            Ok(Parse::Complete(..)) => {
                prop_assert!(cut == wire.len(), "complete at {} of {}", cut, wire.len());
            }
        }
    }

    #[test]
    fn reordered_and_reformatted_specs_hash_identically(
        y in 0.1f64..0.9,
        side in 2u32..64,
        seed in 0u64..u64::MAX,
        steps in 1u64..10_000,
        shuffle in 0usize..24,
        pad in 0usize..4,
    ) {
        let sp = " ".repeat(pad);
        let mut lines = [
            format!("model ={sp}zgb {y} 5"),
            format!("algorithm = ndca{sp}"),
            format!("side{sp}= {side}"),
            format!("seed = {seed}"),
            format!("steps = {steps} # trailing comment"),
        ];
        // One of the permutations via rotation + swap, derived from `shuffle`.
        let n = lines.len();
        lines.rotate_left(shuffle % n);
        if shuffle % 2 == 1 {
            lines.swap(0, n - 1);
        }
        let shuffled = format!("# leading comment\n{}\n", lines.join("\n\n"));
        let canonical_input = format!(
            "model = zgb {y} 5\nalgorithm = ndca\nside = {side}\nseed = {seed}\nsteps = {steps}\n"
        );
        let a = JobRequest::parse(&shuffled).expect("shuffled").cache_key();
        let b = JobRequest::parse(&canonical_input).expect("canonical").cache_key();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn differing_seeds_never_collide(
        seed_a in 0u64..u64::MAX,
        delta in 1u64..1_000_000,
    ) {
        // Construct a guaranteed-distinct pair instead of rejecting
        // collisions: the vendored proptest has no prop_assume.
        let seed_b = seed_a.wrapping_add(delta);
        let spec = |seed: u64| {
            JobRequest::parse(&format!(
                "model = kuzovkov\nalgorithm = ndca\nside = 10\nseed = {seed}\nsteps = 50"
            ))
            .expect("parse")
        };
        prop_assert_ne!(spec(seed_a).cache_key(), spec(seed_b).cache_key());
    }

    #[test]
    fn canonical_text_is_a_fixed_point(
        y in 0.1f64..0.9,
        side in 2u32..64,
        seed in 0u64..u64::MAX,
        steps in 1u64..10_000,
    ) {
        let req = JobRequest::parse(&format!(
            "model = zgb {y} 5\nalgorithm = pndca five random-order\nside = {side}\nseed = {seed}\nsteps = {steps}"
        )).expect("parse");
        let canon = req.canonical_text();
        let again = JobRequest::parse(&canon).expect("reparse").canonical_text();
        prop_assert_eq!(canon, again);
    }
}
