//! Kill/restart durability: the acceptance test for the serving layer.
//!
//! Runs the real `psr-serve` binary, submits a job, waits for it to make
//! checkpointed progress, then SIGKILLs the server (no drain, no warning).
//! A restart on the same state directory must (a) still know every acked
//! submission, (b) resume the in-flight job from its checkpoint, and
//! (c) produce final observables byte-identical to an uninterrupted run on
//! a pristine server.

use psr_serve::client;
use psr_serve::json;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const T: Duration = Duration::from_secs(20);

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psr_serve_durability_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(state: &Path) -> (Child, String) {
    let child = Command::new(env!("CARGO_BIN_EXE_psr-serve"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            state.to_str().expect("utf8 path"),
            "--workers",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn psr-serve");
    // The server writes its resolved address to <state>/addr.
    let addr_file = state.join("addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(a) = std::fs::read_to_string(&addr_file) {
            if !a.is_empty() && client::get(a.trim(), "/healthz", T).is_ok() {
                break a.trim().to_owned();
            }
        }
        assert!(Instant::now() < deadline, "server never came up");
        std::thread::sleep(Duration::from_millis(25));
    };
    (child, addr)
}

fn submit(addr: &str, body: &str) -> (u64, String) {
    let resp =
        client::post(addr, "/v1/jobs", &[("x-tenant", "t")], body.as_bytes(), T).expect("submit");
    assert!(
        resp.status == 200 || resp.status == 202,
        "{} {}",
        resp.status,
        resp.text()
    );
    let v = json::parse(resp.text().trim()).expect("body");
    (
        v.get("id").and_then(json::Value::as_u64).expect("id"),
        v.get("key")
            .and_then(json::Value::as_str)
            .expect("key")
            .to_owned(),
    )
}

fn wait_done(addr: &str, id: u64) -> Vec<u8> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(resp) = client::get(addr, &format!("/v1/jobs/{id}"), T) {
            let v = json::parse(resp.text().trim()).expect("body");
            match v.get("status").and_then(json::Value::as_str) {
                Some("done") => break,
                Some("failed") => panic!("job {id} failed: {}", resp.text()),
                _ => {}
            }
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
    let resp = client::get(addr, &format!("/v1/jobs/{id}/result"), T).expect("result");
    assert_eq!(resp.status, 200);
    resp.body
}

#[test]
fn kill_restart_resumes_from_checkpoint_bit_identically() {
    // Long enough to survive past several checkpoints, cheap enough for CI:
    // checkpoints every 500 steps give the kill a wide window of
    // mid-flight states to land in.
    let body = "model = zgb 0.51 5\nalgorithm = ndca\nside = 24\nseed = 11\nsteps = 20000\ncheckpoint_every = 500\n";

    // Reference: uninterrupted run on a pristine server.
    let clean_state = state_dir("clean");
    let (mut clean, clean_addr) = spawn_server(&clean_state);
    let (clean_id, key) = submit(&clean_addr, body);
    let clean_bytes = wait_done(&clean_addr, clean_id);
    let _ = clean.kill();
    let _ = clean.wait();

    // Victim: same spec, killed once the job has checkpointed progress.
    let victim_state = state_dir("victim");
    let (mut victim, victim_addr) = spawn_server(&victim_state);
    let (victim_id, victim_key) = submit(&victim_addr, body);
    assert_eq!(victim_key, key);
    // A second acked submission that will still be pending at the kill.
    let trailing = "model = kuzovkov\nalgorithm = ndca\nside = 10\nseed = 2\nsteps = 30\n";
    let (trailing_id, _) = submit(&victim_addr, trailing);

    // Wait for a durable checkpoint, then SIGKILL mid-flight.
    let ckpt = victim_state.join("ckpts").join(format!("{key}.ckpt"));
    let done = victim_state.join("ckpts").join(format!("{key}.done"));
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ckpt.exists() {
        assert!(
            !done.exists(),
            "job finished before the kill; raise steps to widen the window"
        );
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    victim.kill().expect("SIGKILL server");
    let _ = victim.wait();

    // Restart on the same state: both acked jobs must complete, the
    // victim resuming from its checkpoint.
    let (mut restarted, new_addr) = spawn_server(&victim_state);
    let resumed_bytes = wait_done(&new_addr, victim_id);
    assert_eq!(
        resumed_bytes, clean_bytes,
        "resumed observables must be byte-identical to the uninterrupted run"
    );
    wait_done(&new_addr, trailing_id);

    // And the resumed result is served as a cache hit now.
    let resp = client::get(&new_addr, &format!("/v1/results/{key}"), T).expect("by key");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, clean_bytes);
    let _ = restarted.kill();
    let _ = restarted.wait();
}
