//! End-to-end API tests against in-process servers on real sockets.

use psr_serve::client;
use psr_serve::json;
use psr_serve::server::{start, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

const T: Duration = Duration::from_secs(20);

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psr_serve_api_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server(tag: &str, tweak: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut cfg = ServerConfig {
        state_dir: state_dir(tag),
        workers: 2,
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    start(cfg, Arc::new(AtomicBool::new(false))).expect("start server")
}

fn spec(seed: u64, steps: u64) -> String {
    format!("model = zgb 0.51 5\nalgorithm = ndca\nside = 12\nseed = {seed}\nsteps = {steps}\n")
}

/// Submit and return `(id, key, cached)`.
fn submit(addr: &str, tenant: &str, body: &str) -> (u64, String, bool) {
    let resp = client::post(
        addr,
        "/v1/jobs",
        &[("x-tenant", tenant)],
        body.as_bytes(),
        T,
    )
    .expect("submit");
    assert!(
        resp.status == 200 || resp.status == 202,
        "submit: {} {}",
        resp.status,
        resp.text()
    );
    let v = json::parse(resp.text().trim()).expect("submit body");
    (
        v.get("id").and_then(json::Value::as_u64).expect("id"),
        v.get("key")
            .and_then(json::Value::as_str)
            .expect("key")
            .to_owned(),
        v.get("cached")
            .and_then(json::Value::as_bool)
            .expect("cached"),
    )
}

fn wait_done(addr: &str, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = client::get(addr, &format!("/v1/jobs/{id}"), T).expect("status");
        let v = json::parse(resp.text().trim()).expect("status body");
        match v.get("status").and_then(json::Value::as_str) {
            Some("done") => return,
            Some("failed") => panic!("job {id} failed: {}", resp.text()),
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn result_bytes(addr: &str, id: u64) -> Vec<u8> {
    let resp = client::get(addr, &format!("/v1/jobs/{id}/result"), T).expect("result");
    assert_eq!(resp.status, 200, "{}", resp.text());
    resp.body
}

#[test]
fn cached_response_is_byte_identical_to_fresh_across_servers() {
    let h1 = server("bits1", |_| {});
    let addr1 = h1.addr.to_string();
    let body = spec(42, 100);

    // Fresh run on server 1.
    let (id_fresh, key, cached) = submit(&addr1, "a", &body);
    assert!(!cached);
    wait_done(&addr1, id_fresh);
    let fresh = result_bytes(&addr1, id_fresh);
    assert!(!fresh.is_empty());

    // Same spec again: a cache hit, done immediately, same bytes.
    let (id_hit, key2, cached) = submit(&addr1, "b", &body);
    assert!(cached, "second submission must hit the cache");
    assert_eq!(key, key2);
    let hit = result_bytes(&addr1, id_hit);
    assert_eq!(hit, fresh, "cached response must be byte-identical");

    // The content address serves the same bytes directly.
    let by_key = client::get(&addr1, &format!("/v1/results/{key}"), T).expect("by key");
    assert_eq!(by_key.status, 200);
    assert_eq!(by_key.body, fresh);
    h1.shutdown_and_join();

    // A brand-new server (fresh state) computes identical bytes.
    let h2 = server("bits2", |_| {});
    let addr2 = h2.addr.to_string();
    let (id2, _, cached) = submit(&addr2, "c", &body);
    assert!(!cached);
    wait_done(&addr2, id2);
    assert_eq!(
        result_bytes(&addr2, id2),
        fresh,
        "fresh recomputation on another server must be byte-identical"
    );
    h2.shutdown_and_join();
}

#[test]
fn overload_returns_429_with_retry_after_and_cache_hits_bypass() {
    let h = server("shed", |cfg| {
        cfg.workers = 1;
        cfg.queue_cap = 1;
    });
    let addr = h.addr.to_string();

    // Prime the cache with a tiny job while the queue is empty.
    let hot = spec(7, 20);
    let (hot_id, _, _) = submit(&addr, "a", &hot);
    wait_done(&addr, hot_id);

    // Fill the queue past the high-water mark with slow jobs.
    let slow = spec(1, 50_000);
    let (_, _, cached) = submit(&addr, "a", &slow);
    assert!(!cached);
    let mut saw_429 = false;
    for seed in 2..12 {
        let resp = client::post(
            &addr,
            "/v1/jobs",
            &[("x-tenant", "a")],
            spec(seed, 50_000).as_bytes(),
            T,
        )
        .expect("submit");
        if resp.status == 429 {
            assert_eq!(
                resp.header("retry-after"),
                Some("1"),
                "429 must carry Retry-After"
            );
            saw_429 = true;
            break;
        }
        assert_eq!(resp.status, 202);
    }
    assert!(saw_429, "the bounded queue must shed load");

    // A cache hit is still served while the queue is saturated.
    let resp = client::post(&addr, "/v1/jobs", &[("x-tenant", "b")], hot.as_bytes(), T)
        .expect("hit submit");
    assert_eq!(resp.status, 200, "cache hits must bypass load-shedding");
    let v = json::parse(resp.text().trim()).expect("body");
    assert_eq!(v.get("cached").and_then(json::Value::as_bool), Some(true));
    h.shutdown_and_join();
}

#[test]
fn stream_tails_observables_and_matches_the_result() {
    let h = server("stream", |_| {});
    let addr = h.addr.to_string();
    let (id, _, _) = submit(&addr, "a", &spec(5, 200));
    // Stream while running: the chunked body must equal the final result.
    let streamed = client::get(
        &addr,
        &format!("/v1/jobs/{id}/stream"),
        Duration::from_secs(90),
    )
    .expect("stream");
    assert_eq!(streamed.status, 200);
    wait_done(&addr, id);
    let result = result_bytes(&addr, id);
    assert_eq!(
        streamed.body, result,
        "streamed JSONL must equal the stored result"
    );
    // Every line is valid JSON with monotonically increasing steps.
    let text = String::from_utf8(result).expect("utf8");
    let steps: Vec<u64> = text
        .lines()
        .map(|l| {
            json::parse(l)
                .expect("line")
                .get("step")
                .and_then(json::Value::as_u64)
                .expect("step")
        })
        .collect();
    assert!(
        steps.windows(2).all(|w| w[0] < w[1]),
        "steps must increase: {steps:?}"
    );
    assert_eq!(*steps.last().expect("line"), 200);
    h.shutdown_and_join();
}

#[test]
fn bad_submissions_get_400_with_line_numbers() {
    let h = server("bad", |_| {});
    let addr = h.addr.to_string();
    let resp = client::post(
        &addr,
        "/v1/jobs",
        &[],
        b"model = zgb 0.5 5\nalgorithm = warp\nside = 10\nsteps = 5",
        T,
    )
    .expect("submit");
    assert_eq!(resp.status, 400);
    assert!(
        resp.text().contains("line 2"),
        "error must cite the offending line: {}",
        resp.text()
    );
    // Oversized work is rejected up front.
    let resp =
        client::post(&addr, "/v1/jobs", &[], spec(1, 100_000_000).as_bytes(), T).expect("submit");
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("exceeds cap"), "{}", resp.text());
    h.shutdown_and_join();
}

#[test]
fn status_metrics_and_health_endpoints_respond() {
    let h = server("metrics", |_| {});
    let addr = h.addr.to_string();
    assert_eq!(
        client::get(&addr, "/healthz", T).expect("healthz").status,
        200
    );
    let (id, key, _) = submit(&addr, "acme", &spec(9, 40));
    wait_done(&addr, id);
    let resp = client::get(&addr, &format!("/v1/jobs/{id}"), T).expect("status");
    let v = json::parse(resp.text().trim()).expect("body");
    assert_eq!(v.get("tenant").and_then(json::Value::as_str), Some("acme"));
    assert_eq!(
        v.get("key").and_then(json::Value::as_str),
        Some(key.as_str())
    );
    let metrics = client::get(&addr, "/metrics", T).expect("metrics").text();
    assert!(metrics.contains("c.serve.completed 1"), "{metrics}");
    assert!(metrics.contains("g.serve.cache_entries 1"), "{metrics}");
    assert!(metrics.contains("h.serve.request_us"), "{metrics}");
    assert_eq!(
        client::get(&addr, "/v1/jobs/999", T).expect("404").status,
        404
    );
    assert_eq!(client::get(&addr, "/nope", T).expect("404").status, 404);
    h.shutdown_and_join();
}

#[test]
fn draining_server_refuses_new_submissions() {
    let h = server("drainrefuse", |_| {});
    let addr = h.addr.to_string();
    let (id, _, _) = submit(&addr, "a", &spec(3, 40));
    wait_done(&addr, id);
    h.shutdown();
    // The accept loop may take a poll interval to notice; the queue flag
    // flips with it. Poll briefly for the 503.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match client::post(&addr, "/v1/jobs", &[], spec(99, 40).as_bytes(), T) {
            Ok(resp) if resp.status == 503 => break,
            Ok(_) | Err(_) if Instant::now() > deadline => break, // closed entirely is fine too
            Err(_) => break,                                      // connection refused: drained
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    h.join();
}
