//! Execution hooks: observing individual trials and reactions.

use psr_lattice::Site;

/// One simulation trial (RSM/NDCA) or event (VSSM/FRM).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Simulated time at which the trial/event completed.
    pub time: f64,
    /// The site that was selected.
    pub site: Site,
    /// Index of the reaction type that was attempted.
    pub reaction: usize,
    /// True if the reaction was enabled and executed.
    pub executed: bool,
}

/// Observer of individual events.
///
/// Implementations must be cheap: the hook is called once per trial in the
/// inner loop. The [`NoHook`] implementation compiles to nothing.
pub trait EventHook {
    /// Called after each trial/event.
    fn on_event(&mut self, event: Event);
}

/// The do-nothing hook.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoHook;

impl EventHook for NoHook {
    #[inline]
    fn on_event(&mut self, _event: Event) {}
}

/// A hook that retains every event (tests and probes only — unbounded).
#[derive(Clone, Debug, Default)]
pub struct CollectHook {
    /// The recorded events.
    pub events: Vec<Event>,
}

impl EventHook for CollectHook {
    fn on_event(&mut self, event: Event) {
        self.events.push(event);
    }
}

impl<F: FnMut(Event)> EventHook for F {
    #[inline]
    fn on_event(&mut self, event: Event) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_hook_retains_events() {
        let mut hook = CollectHook::default();
        let e = Event {
            time: 1.0,
            site: Site(3),
            reaction: 2,
            executed: true,
        };
        hook.on_event(e);
        assert_eq!(hook.events, vec![e]);
    }

    #[test]
    fn closures_are_hooks() {
        let mut count = 0;
        {
            let mut hook = |_e: Event| count += 1;
            hook.on_event(Event {
                time: 0.0,
                site: Site(0),
                reaction: 0,
                executed: false,
            });
        }
        assert_eq!(count, 1);
    }
}
