//! Exact Master Equation integration for tiny lattices.
//!
//! The stochastic model is defined by the Master Equation (paper Eq. 1):
//!
//! ```text
//! dP(S,t)/dt = Σ_S' [ k_{SS'} P(S',t) − k_{S'S} P(S,t) ]
//! ```
//!
//! For a lattice of `N` sites over `|D|` species the state space has
//! `|D|^N` configurations — intractable in general, but exactly enumerable
//! for the tiny lattices used in correctness tests. This module builds the
//! full generator and integrates it with classic RK4, yielding ground-truth
//! coverage curves that the stochastic algorithms (RSM/VSSM/FRM and the CA
//! family) are validated against.

use psr_lattice::{Dims, Lattice};
use psr_model::Model;
use psr_stats::TimeSeries;

/// Hard cap on the enumerated state space.
const MAX_STATES: usize = 1 << 20;

/// The exact Master Equation for a model on a tiny lattice.
#[derive(Clone, Debug)]
pub struct MasterEquation {
    dims: Dims,
    num_species: usize,
    num_states: usize,
    /// COO transition list `(from, to, rate)`.
    transitions: Vec<(u32, u32, f64)>,
    /// Probability vector, indexed by encoded configuration.
    prob: Vec<f64>,
    time: f64,
}

impl MasterEquation {
    /// Enumerate the state space of `model` on `dims` and start from the
    /// point distribution at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `|D|^N` exceeds the internal cap (about 10⁶ states), or if
    /// the initial lattice has mismatched dimensions.
    pub fn new(model: &Model, initial: &Lattice) -> Self {
        let dims = initial.dims();
        let n = dims.sites() as usize;
        let num_species = model.species().len();
        let num_states = (num_species as f64).powi(n as i32);
        assert!(
            num_states <= MAX_STATES as f64,
            "state space {num_states} exceeds the exact-solver cap ({MAX_STATES})"
        );
        let num_states = num_states as usize;

        // Enumerate transitions.
        let mut transitions = Vec::new();
        let mut scratch = Lattice::filled(dims, 0);
        for from in 0..num_states {
            decode(from, num_species, &mut scratch);
            for site in dims.iter_sites() {
                for rt in model.reactions() {
                    if rt.rate() > 0.0 && rt.is_enabled(&scratch, site) {
                        let mut succ = scratch.clone();
                        let mut changes = Vec::new();
                        rt.execute(&mut succ, site, &mut changes);
                        let to = encode(&succ, num_species);
                        transitions.push((from as u32, to as u32, rt.rate()));
                    }
                }
            }
        }

        let mut prob = vec![0.0; num_states];
        prob[encode(initial, num_species)] = 1.0;
        MasterEquation {
            dims,
            num_species,
            num_states,
            transitions,
            prob,
            time: 0.0,
        }
    }

    /// Number of enumerated configurations.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of non-zero transition rates.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Current integration time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.prob
    }

    /// Decode configuration `index` (as indexed by [`probabilities`]) into
    /// `out` — lets callers aggregate the probability vector by lattice
    /// observables (e.g. species counts) for distribution-level
    /// cross-checks against sampled ensembles.
    ///
    /// [`probabilities`]: MasterEquation::probabilities
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `out` has the wrong dimensions.
    pub fn decode_state(&self, index: usize, out: &mut Lattice) {
        assert!(index < self.num_states, "state index out of range");
        assert_eq!(out.dims(), self.dims, "lattice dims mismatch");
        decode(index, self.num_species, out);
    }

    fn derivative(&self, p: &[f64], dp: &mut [f64]) {
        dp.fill(0.0);
        for &(from, to, rate) in &self.transitions {
            let flow = rate * p[from as usize];
            dp[from as usize] -= flow;
            dp[to as usize] += flow;
        }
    }

    /// Advance the distribution by `dt` using one RK4 step.
    pub fn rk4_step(&mut self, dt: f64) {
        let n = self.num_states;
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];

        self.derivative(&self.prob, &mut k1);
        for i in 0..n {
            tmp[i] = self.prob[i] + 0.5 * dt * k1[i];
        }
        self.derivative(&tmp, &mut k2);
        for i in 0..n {
            tmp[i] = self.prob[i] + 0.5 * dt * k2[i];
        }
        self.derivative(&tmp, &mut k3);
        for i in 0..n {
            tmp[i] = self.prob[i] + dt * k3[i];
        }
        self.derivative(&tmp, &mut k4);
        for i in 0..n {
            self.prob[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        self.time += dt;
    }

    /// Integrate to `t_end` with steps of at most `dt`, sampling the
    /// expected coverage of `species` every `sample_dt` into a time series.
    pub fn integrate(&mut self, t_end: f64, dt: f64, sample_dt: f64, species: u8) -> TimeSeries {
        assert!(dt > 0.0 && sample_dt > 0.0, "steps must be positive");
        let mut series = TimeSeries::new();
        let mut next_sample = self.time;
        while self.time < t_end - 1e-12 {
            if self.time >= next_sample - 1e-12 {
                series.push(next_sample, self.expected_coverage(species));
                next_sample += sample_dt;
            }
            let step = dt.min(t_end - self.time);
            self.rk4_step(step);
        }
        series.push(self.time, self.expected_coverage(species));
        series
    }

    /// Expected coverage `E[fraction of sites in `species`]`.
    pub fn expected_coverage(&self, species: u8) -> f64 {
        let n = self.dims.sites() as usize;
        let mut scratch = Lattice::filled(self.dims, 0);
        let mut acc = 0.0;
        for (state, &p) in self.prob.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            decode(state, self.num_species, &mut scratch);
            acc += p * scratch.count(species) as f64 / n as f64;
        }
        acc
    }

    /// Total probability (should stay 1 up to integration error).
    pub fn total_probability(&self) -> f64 {
        self.prob.iter().sum()
    }
}

/// Encode a configuration as a mixed-radix integer.
fn encode(lattice: &Lattice, num_species: usize) -> usize {
    let mut acc = 0usize;
    for &c in lattice.cells().iter().rev() {
        acc = acc * num_species + c as usize;
    }
    acc
}

/// Decode a mixed-radix integer into `out`.
fn decode(mut state: usize, num_species: usize, out: &mut Lattice) {
    for i in 0..out.len() {
        out.cells_mut()[i] = (state % num_species) as u8;
        state /= num_species;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_model::ModelBuilder;

    fn adsorption(rate: f64) -> Model {
        ModelBuilder::new(&["*", "A"])
            .reaction("ads", rate, |r| {
                r.site((0, 0), "*", "A");
            })
            .build()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dims = Dims::new(3, 2);
        let mut l = Lattice::filled(dims, 0);
        for state in [0usize, 1, 5, 63, 100, 728] {
            decode(state, 3, &mut l);
            assert_eq!(encode(&l, 3), state);
        }
    }

    #[test]
    fn langmuir_adsorption_exact() {
        // Single-site adsorption: E[θ](t) = 1 − e^(−kt), exactly.
        let model = adsorption(2.0);
        let initial = Lattice::filled(Dims::new(2, 2), 0);
        let mut me = MasterEquation::new(&model, &initial);
        assert_eq!(me.num_states(), 16);
        for _ in 0..20 {
            me.rk4_step(0.01);
        }
        let expected = 1.0 - (-2.0 * 0.2f64).exp();
        assert!(
            (me.expected_coverage(1) - expected).abs() < 1e-8,
            "got {}, want {expected}",
            me.expected_coverage(1)
        );
        assert!((me.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pair_reaction_conserves_probability() {
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .reaction_rotations("pair des", 0.7, 2, |r| {
                r.site((0, 0), "A", "*").site((1, 0), "A", "*");
            })
            .build();
        let initial = Lattice::filled(Dims::new(2, 2), 0);
        let mut me = MasterEquation::new(&model, &initial);
        for _ in 0..50 {
            me.rk4_step(0.02);
        }
        assert!((me.total_probability() - 1.0).abs() < 1e-8);
        let theta = me.expected_coverage(1);
        assert!(theta > 0.0 && theta < 1.0);
    }

    #[test]
    fn integrate_produces_monotone_adsorption_curve() {
        let model = adsorption(1.0);
        let initial = Lattice::filled(Dims::new(2, 2), 0);
        let mut me = MasterEquation::new(&model, &initial);
        let series = me.integrate(1.0, 0.01, 0.25, 1);
        assert!(series.len() >= 4);
        for w in series.values().windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "coverage must be non-decreasing");
        }
        let last = *series.values().last().expect("non-empty");
        assert!((last - (1.0 - (-1.0f64).exp())).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "exceeds the exact-solver cap")]
    fn oversized_state_space_panics() {
        let model = adsorption(1.0);
        let initial = Lattice::filled(Dims::new(30, 30), 0);
        MasterEquation::new(&model, &initial);
    }

    #[test]
    fn transition_count_matches_combinatorics() {
        // 2x1 lattice (with periodic wrap, sites see each other twice),
        // adsorption only: transitions = #(vacant sites) summed over states.
        // States: 4 (empty, A_, _A, AA) → 2 + 1 + 1 + 0 = 4.
        let model = adsorption(1.0);
        let initial = Lattice::filled(Dims::new(2, 1), 0);
        let me = MasterEquation::new(&model, &initial);
        assert_eq!(me.num_states(), 4);
        assert_eq!(me.num_transitions(), 4);
    }
}
