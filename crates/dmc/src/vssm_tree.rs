//! VSSM over a segment-tree propensity index.
//!
//! Functionally identical kinetics to [`crate::Vssm`] (both are exact
//! Master-Equation samplers); the difference is the data structure. Here
//! every `(site, reaction)` pair owns a leaf in a [`PropensityTree`], so
//! selection is a single O(log(N·|T|)) descent with no per-type scan. This
//! is the method of choice when reaction types are many or their rates
//! vary per instance, and it is the shape used by production KMC codes.

use crate::events::{Event, EventHook};
use crate::propensity_tree::PropensityTree;
use crate::recorder::Recorder;
use crate::rsm::RunStats;
use crate::sim::SimState;
use psr_lattice::{Lattice, Site};
use psr_model::Model;
use psr_rng::{exponential, SimRng};

/// Tree-indexed VSSM simulator.
#[derive(Clone, Debug)]
pub struct VssmTree<'m> {
    model: &'m Model,
    tree: PropensityTree,
    num_reactions: usize,
    anchor_offsets: Vec<Vec<psr_lattice::Offset>>,
}

impl<'m> VssmTree<'m> {
    /// Build the propensity index by scanning `lattice`.
    pub fn new(model: &'m Model, lattice: &Lattice) -> Self {
        let n = lattice.len();
        let num_reactions = model.num_reactions();
        let mut tree = PropensityTree::new(n * num_reactions);
        for site in lattice.dims().iter_sites() {
            model.for_each_enabled(lattice, site, |ri, rt| {
                tree.set(site.0 as usize * num_reactions + ri, rt.rate());
            });
        }
        VssmTree {
            model,
            tree,
            num_reactions,
            anchor_offsets: model
                .reactions()
                .iter()
                .map(|rt| rt.transforms().iter().map(|t| t.offset.negated()).collect())
                .collect(),
        }
    }

    /// Summed rate of all enabled reactions.
    pub fn total_propensity(&self) -> f64 {
        self.tree.total()
    }

    fn refresh_around(&mut self, lattice: &Lattice, changed_site: Site) {
        let dims = lattice.dims();
        for ri in 0..self.num_reactions {
            let rt = self.model.reaction(ri);
            for k in 0..self.anchor_offsets[ri].len() {
                let anchor = dims.translate(changed_site, self.anchor_offsets[ri][k]);
                let slot = anchor.0 as usize * self.num_reactions + ri;
                let weight = if rt.is_enabled(lattice, anchor) {
                    rt.rate()
                } else {
                    0.0
                };
                self.tree.set(slot, weight);
            }
        }
    }

    /// Execute one event, refusing to pass `t_end` (clock clamps there).
    pub fn step_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        changes: &mut Vec<(Site, u8, u8)>,
        t_end: f64,
    ) -> Option<Event> {
        let total = self.tree.total();
        if total <= 0.0 {
            return None;
        }
        let dt = exponential(rng, total);
        if state.time + dt > t_end {
            state.time = t_end;
            return None;
        }
        let slot = self.tree.sample(rng)?;
        let site = Site((slot / self.num_reactions) as u32);
        let ri = slot % self.num_reactions;
        state.time += dt;
        changes.clear();
        let rt = self.model.reaction(ri);
        debug_assert!(rt.is_enabled(&state.lattice, site));
        rt.execute(&mut state.lattice, site, changes);
        state.apply_changes(changes);
        let changed: Vec<Site> = changes.iter().map(|&(z, _, _)| z).collect();
        for z in changed {
            self.refresh_around(&state.lattice, z);
        }
        Some(Event {
            time: state.time,
            site,
            reaction: ri,
            executed: true,
        })
    }

    /// Run until `t_end` (or the absorbing state).
    pub fn run_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let mut changes = Vec::with_capacity(4);
        while state.time < t_end {
            let Some(event) = self.step_until(state, rng, &mut changes, t_end) else {
                break;
            };
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record_until(event.time, &state.coverage);
            }
            stats.trials += 1;
            stats.executed += 1;
            hook.on_event(event);
        }
        if let Some(rec) = recorder {
            rec.record(t_end, &state.coverage);
        }
        stats
    }

    /// Rebuild-from-scratch comparison (tests only).
    pub fn index_is_consistent(&self, lattice: &Lattice) -> bool {
        if !self.tree.is_consistent() {
            return false;
        }
        for site in lattice.dims().iter_sites() {
            for (ri, rt) in self.model.reactions().iter().enumerate() {
                let slot = site.0 as usize * self.num_reactions + ri;
                let expected = if rt.is_enabled(lattice, site) {
                    rt.rate()
                } else {
                    0.0
                };
                if (self.tree.get(slot) - expected).abs() > 1e-12 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NoHook;
    use crate::vssm::Vssm;
    use psr_lattice::Dims;
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;
    use psr_rng::rng_from_seed;

    #[test]
    fn initial_index_matches_scan() {
        let model = zgb_ziff(0.5, 2.0);
        let lattice = Lattice::filled(Dims::new(8, 8), 0);
        let vt = VssmTree::new(&model, &lattice);
        assert!(vt.index_is_consistent(&lattice));
        // Empty ZGB surface: CO ads everywhere (64·0.5) + O2 both
        // orientations everywhere (64·2·0.25).
        let expected = 64.0 * 0.5 + 64.0 * 2.0 * 0.25;
        assert!((vt.total_propensity() - expected).abs() < 1e-9);
    }

    #[test]
    fn total_propensity_tracks_plain_vssm() {
        let model = zgb_ziff(0.45, 3.0);
        let lattice = Lattice::filled(Dims::new(8, 8), 0);
        let mut state = SimState::new(lattice, &model);
        let mut vt = VssmTree::new(&model, &state.lattice);
        let mut rng = rng_from_seed(4);
        let mut changes = Vec::new();
        for i in 0..400 {
            if vt
                .step_until(&mut state, &mut rng, &mut changes, f64::INFINITY)
                .is_none()
            {
                break;
            }
            if i % 100 == 0 {
                let reference = Vssm::new(&model, &state.lattice);
                assert!(
                    (vt.total_propensity() - reference.total_propensity()).abs() < 1e-6,
                    "propensity diverged at event {i}"
                );
            }
        }
        assert!(vt.index_is_consistent(&state.lattice));
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn langmuir_kinetics_match_analytic() {
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .build();
        let lattice = Lattice::filled(Dims::new(80, 80), 0);
        let mut state = SimState::new(lattice, &model);
        let mut vt = VssmTree::new(&model, &state.lattice);
        let mut rng = rng_from_seed(9);
        vt.run_until(&mut state, &mut rng, 1.0, None, &mut NoHook);
        let theta = state.coverage.fraction(1);
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (theta - expected).abs() < 0.02,
            "tree-VSSM coverage {theta} vs analytic {expected}"
        );
    }

    #[test]
    fn absorbing_state_terminates() {
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .build();
        let lattice = Lattice::filled(Dims::new(4, 4), 0);
        let mut state = SimState::new(lattice, &model);
        let mut vt = VssmTree::new(&model, &state.lattice);
        let mut rng = rng_from_seed(2);
        let stats = vt.run_until(&mut state, &mut rng, 1e9, None, &mut NoHook);
        assert_eq!(stats.executed, 16);
        assert_eq!(vt.total_propensity(), 0.0);
    }
}
