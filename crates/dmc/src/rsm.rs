//! The Random Selection Method (paper §3).
//!
//! ```text
//! set time to 0;
//! repeat
//!   1. select a site s randomly with probability 1/N;
//!   2. select a reaction type i with probability k_i / K;
//!   3. check if the reaction type is enabled at s;
//!   4. if it is, execute it;
//!   5. advance the time by drawing from [1 − exp(−N·K·t)];
//! until simulation time has elapsed;
//! ```
//!
//! One *trial* is one iteration; one *MC step* is `N` trials. The paper also
//! notes the discretised reading where each trial advances time by exactly
//! `1/(N·K)` — both are available via [`TimeMode`].

use std::sync::Arc;

use crate::events::{Event, EventHook};
use crate::recorder::Recorder;
use crate::sim::SimState;
use psr_kernel::{CompiledModel, SiteKernel};
use psr_lattice::Site;
use psr_model::Model;
use psr_rng::{exponential, AliasTable, SimRng};

/// How trials advance the simulated clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeMode {
    /// Draw `Δt ~ Exp(N·K)` per trial (the Master-Equation kinetics).
    Stochastic,
    /// Advance by exactly `1/(N·K)` per trial (the time-discretised ME).
    Discretized,
}

/// Counters reported by a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Trials attempted.
    pub trials: u64,
    /// Trials whose reaction was enabled and executed.
    pub executed: u64,
}

impl std::ops::AddAssign for RunStats {
    fn add_assign(&mut self, rhs: Self) {
        self.trials += rhs.trials;
        self.executed += rhs.executed;
    }
}

/// The Random Selection Method over a model.
#[derive(Clone, Debug)]
pub struct Rsm<'m> {
    model: &'m Model,
    alias: AliasTable,
    time_mode: TimeMode,
    /// Compiled matcher; `None` when naive matching was requested.
    compiled: Option<Arc<CompiledModel>>,
    /// Lattice-bound kernel, built lazily on the first run.
    kernel: Option<SiteKernel>,
}

impl<'m> Rsm<'m> {
    /// Prepare RSM for `model` with stochastic time and compiled matching.
    pub fn new(model: &'m Model) -> Self {
        Rsm {
            model,
            alias: AliasTable::new(&model.rate_weights()),
            time_mode: TimeMode::Stochastic,
            compiled: CompiledModel::try_compile(model).map(Arc::new),
            kernel: None,
        }
    }

    /// Select the time-advance mode.
    pub fn with_time_mode(mut self, mode: TimeMode) -> Self {
        self.time_mode = mode;
        self
    }

    /// Disable (or re-enable) the compiled kernel and match patterns with
    /// the naive per-reaction scan. Trajectories are bit-identical either
    /// way; this is the escape hatch and the benchmark baseline.
    pub fn with_naive_matching(mut self, naive: bool) -> Self {
        self.kernel = None;
        self.compiled = if naive {
            None
        } else {
            CompiledModel::try_compile(self.model).map(Arc::new)
        };
        self
    }

    /// The model being simulated.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// (Re)bind the kernel to the state's lattice and bring it up to date.
    /// Callers that drive [`trial`](Self::trial) directly should invoke this
    /// once before their trial loop.
    pub fn ensure_kernel(&mut self, state: &SimState) {
        let Some(compiled) = &self.compiled else {
            return;
        };
        match &mut self.kernel {
            Some(k) if k.dims() == state.lattice.dims() => {
                k.ensure_fresh(&state.lattice, state.mutation_epoch());
            }
            _ => {
                let mut k = SiteKernel::new(Arc::clone(compiled), &state.lattice);
                k.note_epoch(state.mutation_epoch());
                self.kernel = Some(k);
            }
        }
    }

    /// One trial: select site and reaction type, execute if enabled.
    /// Does NOT advance the clock (the caller owns time bookkeeping so it
    /// can interleave recording correctly).
    #[inline]
    pub fn trial(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        changes: &mut Vec<(Site, u8, u8)>,
    ) -> Event {
        let site = Site(rng.index(state.num_sites()) as u32);
        let reaction = self.alias.sample(rng);
        changes.clear();
        // The enabled check consumes no randomness, so the compiled and
        // naive arms produce bit-identical trajectories.
        let executed = if let Some(kernel) = &mut self.kernel {
            let enabled = kernel.is_enabled(site, reaction);
            if enabled {
                self.model
                    .reaction(reaction)
                    .execute(&mut state.lattice, site, changes);
                state.apply_changes(changes);
                kernel.apply_changes(&state.lattice, changes);
                kernel.note_epoch(state.mutation_epoch());
            }
            enabled
        } else {
            let executed =
                self.model
                    .reaction(reaction)
                    .try_execute(&mut state.lattice, site, changes);
            if executed {
                state.apply_changes(changes);
            }
            executed
        };
        Event {
            time: state.time,
            site,
            reaction,
            executed,
        }
    }

    /// Run until the simulated clock reaches `t_end`.
    pub fn run_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        self.ensure_kernel(state);
        let mut stats = RunStats::default();
        let mut changes = Vec::with_capacity(4);
        // Hoisted out of the trial loop: same operands, same values, so the
        // trajectory is unchanged.
        let nk = state.num_sites() as f64 * self.model.total_rate();
        let dt_disc = 1.0 / nk;
        while state.time < t_end {
            let dt = match self.time_mode {
                TimeMode::Stochastic => exponential(rng, nk),
                TimeMode::Discretized => dt_disc,
            };
            let t_next = state.time + dt;
            if let Some(rec) = recorder.as_deref_mut() {
                // Grid points before the event keep the pre-event coverage.
                rec.record_until(t_next.min(t_end), &state.coverage);
            }
            if t_next > t_end {
                state.time = t_end;
                break;
            }
            state.time = t_next;
            let event = self.trial(state, rng, &mut changes);
            stats.trials += 1;
            stats.executed += event.executed as u64;
            hook.on_event(event);
        }
        if let Some(rec) = recorder {
            rec.record(t_end, &state.coverage);
        }
        stats
    }

    /// Run exactly `steps` MC steps (`steps · N` trials), advancing the
    /// clock per trial as configured.
    pub fn run_mc_steps(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        self.ensure_kernel(state);
        let mut stats = RunStats::default();
        let mut changes = Vec::with_capacity(4);
        let nk = state.num_sites() as f64 * self.model.total_rate();
        let dt_disc = 1.0 / nk;
        let trials = steps * state.num_sites() as u64;
        for _ in 0..trials {
            let dt = match self.time_mode {
                TimeMode::Stochastic => exponential(rng, nk),
                TimeMode::Discretized => dt_disc,
            };
            let t_next = state.time + dt;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record_until(t_next, &state.coverage);
            }
            state.time = t_next;
            let event = self.trial(state, rng, &mut changes);
            stats.trials += 1;
            stats.executed += event.executed as u64;
            hook.on_event(event);
        }
        if let Some(rec) = recorder {
            rec.record(state.time, &state.coverage);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NoHook;
    use psr_lattice::{Dims, Lattice};
    use psr_model::library::zgb::{zgb_ziff, ZGB_SPECIES};
    use psr_model::ModelBuilder;
    use psr_rng::rng_from_seed;

    fn adsorption_only(rate: f64) -> psr_model::Model {
        ModelBuilder::new(&["*", "A"])
            .reaction("ads", rate, |r| {
                r.site((0, 0), "*", "A");
            })
            .build()
    }

    #[test]
    fn run_stats_accumulate() {
        let mut total = RunStats::default();
        total += RunStats {
            trials: 3,
            executed: 1,
        };
        total += RunStats {
            trials: 7,
            executed: 2,
        };
        assert_eq!(
            total,
            RunStats {
                trials: 10,
                executed: 3
            }
        );
    }

    #[test]
    fn adsorption_saturates_lattice() {
        let model = adsorption_only(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(10, 10), 0), &model);
        let mut rng = rng_from_seed(7);
        let mut rsm = Rsm::new(&model);
        rsm.run_until(&mut state, &mut rng, 20.0, None, &mut NoHook);
        // After t = 20 (rate 1 ⇒ P(still empty) = e^-20), essentially full.
        assert!(state.coverage.fraction(1) > 0.99);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn adsorption_kinetics_match_analytic_solution() {
        // Langmuir adsorption: θ(t) = 1 − exp(−k t); check at t = 1 with
        // k = 1 over a large lattice (law of large numbers).
        let model = adsorption_only(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(100, 100), 0), &model);
        let mut rng = rng_from_seed(11);
        let mut rsm = Rsm::new(&model);
        rsm.run_until(&mut state, &mut rng, 1.0, None, &mut NoHook);
        let theta = state.coverage.fraction(1);
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (theta - expected).abs() < 0.02,
            "coverage {theta} vs analytic {expected}"
        );
    }

    #[test]
    fn discretized_time_is_deterministic_per_trial() {
        let model = adsorption_only(2.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(5, 5), 0), &model);
        let mut rng = rng_from_seed(3);
        let mut rsm = Rsm::new(&model).with_time_mode(TimeMode::Discretized);
        let stats = rsm.run_mc_steps(&mut state, &mut rng, 2, None, &mut NoHook);
        // 2 MC steps = 2·25 trials, each advancing 1/(25·2) = 0.02.
        assert_eq!(stats.trials, 50);
        assert!((state.time - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recorder_samples_on_grid() {
        let model = adsorption_only(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(8, 8), 0), &model);
        let mut rng = rng_from_seed(5);
        let mut rsm = Rsm::new(&model);
        let mut rec = Recorder::new(2, 0.5);
        rsm.run_until(&mut state, &mut rng, 2.0, Some(&mut rec), &mut NoHook);
        assert_eq!(rec.series(0).times(), &[0.0, 0.5, 1.0, 1.5, 2.0]);
        let vacant = rec.series(0).values();
        assert_eq!(vacant[0], 1.0);
        // Vacancy fraction decreases monotonically under pure adsorption.
        for w in vacant.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn zgb_run_reaches_steady_activity() {
        let model = zgb_ziff(0.5, 10.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(20, 20), 0), &model);
        let mut rng = rng_from_seed(13);
        let mut rsm = Rsm::new(&model);
        let stats = rsm.run_until(&mut state, &mut rng, 5.0, None, &mut NoHook);
        assert!(stats.trials > 0);
        assert!(stats.executed > 0);
        assert!(stats.executed <= stats.trials);
        assert!(state.coverage.matches(&state.lattice));
        // Something adsorbed.
        let occupied = 1.0 - state.coverage.fraction(ZGB_SPECIES.vacant.id());
        assert!(occupied > 0.1);
    }

    #[test]
    fn reproducible_across_runs() {
        let model = zgb_ziff(0.45, 5.0);
        let run = || {
            let mut state = SimState::new(Lattice::filled(Dims::new(16, 16), 0), &model);
            let mut rng = rng_from_seed(99);
            Rsm::new(&model).run_until(&mut state, &mut rng, 2.0, None, &mut NoHook);
            state.lattice
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hook_sees_every_trial() {
        let model = adsorption_only(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(4, 4), 0), &model);
        let mut rng = rng_from_seed(2);
        let mut rsm = Rsm::new(&model);
        let mut count = 0u64;
        let stats = rsm.run_mc_steps(&mut state, &mut rng, 3, None, &mut |_e: Event| count += 1);
        assert_eq!(count, stats.trials);
        assert_eq!(count, 3 * 16);
    }
}
