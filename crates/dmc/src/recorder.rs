//! Coverage sampling shared by all simulation algorithms.
//!
//! A [`Recorder`] samples the per-species coverage fractions on a fixed
//! simulated-time grid as the simulation sweeps past each grid point, and
//! exposes one [`TimeSeries`] per species — the raw material for every
//! coverage-vs-time figure (Figs 8–10).

use psr_lattice::Coverage;
use psr_stats::TimeSeries;

/// Samples coverage fractions every `sample_dt` simulated time units.
#[derive(Clone, Debug)]
pub struct Recorder {
    sample_dt: f64,
    next_sample: f64,
    series: Vec<TimeSeries>,
}

impl Recorder {
    /// A recorder for `num_states` species sampling every `sample_dt`.
    ///
    /// # Panics
    ///
    /// Panics unless `sample_dt > 0` and `num_states > 0`.
    pub fn new(num_states: usize, sample_dt: f64) -> Self {
        assert!(
            sample_dt > 0.0 && sample_dt.is_finite(),
            "sample_dt must be positive"
        );
        assert!(num_states > 0, "need at least one state");
        Recorder {
            sample_dt,
            next_sample: 0.0,
            series: vec![TimeSeries::new(); num_states],
        }
    }

    /// Record samples for every grid point `<= time` that has not been
    /// sampled yet, using the current coverage (the state is piecewise
    /// constant between events, so the value at the grid point is the value
    /// now *before* applying the event that moved time past it — call this
    /// BEFORE mutating state when `time` is the post-advance clock, or
    /// simply accept one-event granularity, which is what we do: coverage
    /// changes by at most a few sites per event).
    pub fn record(&mut self, time: f64, coverage: &Coverage) {
        // The relative epsilon absorbs float accumulation in discretised
        // time (N additions of 1/(N·K) may land just below a grid point).
        let time = time + 1e-9 * self.sample_dt;
        while self.next_sample <= time {
            let t = self.next_sample;
            for (state, series) in self.series.iter_mut().enumerate() {
                series.push(t, coverage.fraction(state as u8));
            }
            self.next_sample += self.sample_dt;
        }
    }

    /// Record samples for every grid point strictly below `time`.
    ///
    /// Used by event-driven algorithms: the state is constant on `[t, t')`
    /// between events, so grid points inside that interval take the
    /// *pre-event* coverage; a grid point at exactly `t'` takes the
    /// post-event coverage via a later [`record`](Self::record) call.
    pub fn record_until(&mut self, time: f64, coverage: &Coverage) {
        while self.next_sample < time {
            let t = self.next_sample;
            for (state, series) in self.series.iter_mut().enumerate() {
                series.push(t, coverage.fraction(state as u8));
            }
            self.next_sample += self.sample_dt;
        }
    }

    /// The sampled series for one species id.
    pub fn series(&self, state: u8) -> &TimeSeries {
        &self.series[state as usize]
    }

    /// All series, indexed by species id.
    pub fn all_series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Sum of several species' series (e.g. total CO = hex CO + square CO
    /// in the Kuzovkov model). Series share the same time grid.
    pub fn combined_series(&self, states: &[u8]) -> TimeSeries {
        let mut out = TimeSeries::new();
        if states.is_empty() || self.series[states[0] as usize].is_empty() {
            return out;
        }
        let times = self.series[states[0] as usize].times().to_vec();
        for (i, &t) in times.iter().enumerate() {
            let sum: f64 = states
                .iter()
                .map(|&s| self.series[s as usize].values()[i])
                .sum();
            out.push(t, sum);
        }
        out
    }

    /// The sampling interval.
    pub fn sample_dt(&self) -> f64 {
        self.sample_dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_grid() {
        let mut r = Recorder::new(2, 1.0);
        let c = Coverage::uniform(10, 2, 0);
        r.record(0.0, &c); // t=0 grid point
        r.record(2.5, &c); // grid points 1.0, 2.0
        assert_eq!(r.series(0).times(), &[0.0, 1.0, 2.0]);
        assert_eq!(r.series(0).values(), &[1.0, 1.0, 1.0]);
        assert_eq!(r.series(1).values(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn no_duplicate_grid_points() {
        let mut r = Recorder::new(1, 0.5);
        let c = Coverage::uniform(4, 1, 0);
        r.record(0.4, &c);
        r.record(0.4, &c);
        r.record(0.6, &c);
        assert_eq!(r.series(0).times(), &[0.0, 0.5]);
    }

    #[test]
    fn combined_series_sums_species() {
        let mut r = Recorder::new(3, 1.0);
        let mut c = Coverage::uniform(4, 3, 0);
        c.transition(0, 1);
        c.transition(0, 2);
        r.record(0.0, &c);
        let combined = r.combined_series(&[1, 2]);
        assert_eq!(combined.values(), &[0.5]);
    }

    #[test]
    fn empty_recorder_combined_is_empty() {
        let r = Recorder::new(2, 1.0);
        assert!(r.combined_series(&[0, 1]).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_panics() {
        Recorder::new(1, 0.0);
    }
}
