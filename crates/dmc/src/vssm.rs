//! The Variable Step Size Method (Gillespie's direct method).
//!
//! The paper's RSM wastes trials on disabled reactions; the rejection-free
//! VSSM (one of the 48 algorithms in the Segers taxonomy the paper cites)
//! instead maintains the set of *enabled* reactions, draws the next reaction
//! proportionally to its rate, and advances time by `Exp(R_total)` where
//! `R_total` is the summed rate of all enabled reactions. Both methods
//! simulate the same Master Equation kinetics; VSSM serves here as an
//! independent DMC baseline to validate RSM against.

use std::sync::Arc;

use crate::events::{Event, EventHook};
use crate::recorder::Recorder;
use crate::rsm::RunStats;
use crate::sim::SimState;
use psr_kernel::{CompiledModel, SiteKernel};
use psr_lattice::{Lattice, Site};
use psr_model::Model;
use psr_rng::{exponential, SimRng};

/// For one reaction type: the set of sites where it is enabled, supporting
/// O(1) insert/remove/sample (swap-remove with a position map).
///
/// Public because the fractional-step executor in `psr-ca` maintains the
/// same per-reaction enabled index for its within-window exact KMC; the
/// swap-remove iteration order is part of the trajectory contract, so both
/// executors must share one implementation.
#[derive(Clone, Debug)]
pub struct SiteSet {
    sites: Vec<Site>,
    /// `pos[site] = index + 1` in `sites`, or 0 when absent.
    pos: Vec<u32>,
}

impl SiteSet {
    /// An empty set over a lattice of `num_sites` sites.
    pub fn new(num_sites: usize) -> Self {
        SiteSet {
            sites: Vec::new(),
            pos: vec![0; num_sites],
        }
    }

    /// Number of sites currently in the set.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, site: Site) -> bool {
        self.pos[site.0 as usize] != 0
    }

    /// Insert `site` (no-op when already present).
    pub fn insert(&mut self, site: Site) {
        if !self.contains(site) {
            self.sites.push(site);
            self.pos[site.0 as usize] = self.sites.len() as u32;
        }
    }

    /// Remove `site` (no-op when absent); swap-remove, order-affecting.
    pub fn remove(&mut self, site: Site) {
        let p = self.pos[site.0 as usize];
        if p == 0 {
            return;
        }
        let idx = (p - 1) as usize;
        let last = self.sites.len() - 1;
        self.sites.swap(idx, last);
        let moved = self.sites[idx];
        self.pos[moved.0 as usize] = p;
        self.sites.pop();
        self.pos[site.0 as usize] = 0;
    }

    /// Draw a member uniformly (one `rng.index` consumption).
    pub fn sample(&self, rng: &mut SimRng) -> Site {
        self.sites[rng.index(self.sites.len())]
    }

    /// Remove every site, keeping the allocation.
    pub fn clear(&mut self) {
        for &s in &self.sites {
            self.pos[s.0 as usize] = 0;
        }
        self.sites.clear();
    }

    /// Number of site slots the position map covers.
    pub fn capacity_sites(&self) -> usize {
        self.pos.len()
    }
}

/// VSSM simulator with an incrementally maintained enabled-reaction index.
#[derive(Clone, Debug)]
pub struct Vssm<'m> {
    model: &'m Model,
    enabled: Vec<SiteSet>,
    /// For each changed lattice site `z`, the candidate anchors whose
    /// enabledness may have changed are `z − offset` for every pattern
    /// offset; precomputed per reaction type.
    anchor_offsets: Vec<Vec<psr_lattice::Offset>>,
    /// `anchor_cells[ri][k]` = stencil cell index of reaction `ri`'s `k`-th
    /// transform offset in the compiled model — so the kernel's anchor table
    /// yields the exact same candidate sequence as `anchor_offsets`.
    anchor_cells: Vec<Vec<u16>>,
    /// Compiled matcher; `None` when naive matching was requested (or the
    /// model is not kernel-eligible).
    compiled: Option<Arc<CompiledModel>>,
    /// Lattice-bound kernel, built lazily on the first step.
    kernel: Option<SiteKernel>,
}

impl<'m> Vssm<'m> {
    /// Build the enabled index by scanning `lattice`.
    pub fn new(model: &'m Model, lattice: &Lattice) -> Self {
        let n = lattice.len();
        let mut enabled = vec![SiteSet::new(n); model.num_reactions()];
        for site in lattice.dims().iter_sites() {
            for (ri, rt) in model.reactions().iter().enumerate() {
                if rt.is_enabled(lattice, site) {
                    enabled[ri].insert(site);
                }
            }
        }
        let anchor_offsets = model
            .reactions()
            .iter()
            .map(|rt| rt.transforms().iter().map(|t| t.offset.negated()).collect())
            .collect();
        let compiled = CompiledModel::try_compile(model).map(Arc::new);
        let anchor_cells = match &compiled {
            Some(c) => model
                .reactions()
                .iter()
                .map(|rt| {
                    rt.transforms()
                        .iter()
                        .map(|t| {
                            c.cells()
                                .binary_search(&t.offset)
                                .expect("offset in stencil") as u16
                        })
                        .collect()
                })
                .collect(),
            None => Vec::new(),
        };
        Vssm {
            model,
            enabled,
            anchor_offsets,
            anchor_cells,
            compiled,
            kernel: None,
        }
    }

    /// Disable (or re-enable) the compiled kernel and match patterns with
    /// the naive per-reaction scan. Trajectories are bit-identical either
    /// way; this is the escape hatch and the benchmark baseline.
    pub fn with_naive_matching(mut self, naive: bool) -> Self {
        self.kernel = None;
        self.compiled = if naive {
            None
        } else {
            CompiledModel::try_compile(self.model).map(Arc::new)
        };
        self
    }

    /// Summed rate of all enabled reactions (`Σ kSS'` of the ME, Eq. 1).
    pub fn total_propensity(&self) -> f64 {
        self.model
            .reactions()
            .iter()
            .zip(&self.enabled)
            .map(|(rt, set)| rt.rate() * set.len() as f64)
            .sum()
    }

    /// Number of sites where reaction `ri` is enabled.
    pub fn enabled_count(&self, ri: usize) -> usize {
        self.enabled[ri].len()
    }

    /// Re-examine enabledness of all reactions whose pattern could touch
    /// `changed_site`.
    ///
    /// The kernel arm visits the exact same `(reaction, anchor)` sequence
    /// with the exact same verdicts as the naive arm, so the swap-remove
    /// site sets — whose iteration order affects sampling — evolve
    /// identically and trajectories stay bit-identical.
    fn refresh_around(&mut self, lattice: &Lattice, changed_site: Site) {
        if let Some(kernel) = &self.kernel {
            for ri in 0..self.enabled.len() {
                for &cell in &self.anchor_cells[ri] {
                    let anchor = kernel.anchor(changed_site, cell as usize);
                    if kernel.is_enabled(anchor, ri) {
                        self.enabled[ri].insert(anchor);
                    } else {
                        self.enabled[ri].remove(anchor);
                    }
                }
            }
        } else {
            let dims = lattice.dims();
            for ri in 0..self.enabled.len() {
                let rt = self.model.reaction(ri);
                for k in 0..self.anchor_offsets[ri].len() {
                    let anchor = dims.translate(changed_site, self.anchor_offsets[ri][k]);
                    if rt.is_enabled(lattice, anchor) {
                        self.enabled[ri].insert(anchor);
                    } else {
                        self.enabled[ri].remove(anchor);
                    }
                }
            }
        }
    }

    /// (Re)bind the kernel to the state's lattice and bring it up to date.
    fn ensure_kernel(&mut self, state: &SimState) {
        let Some(compiled) = &self.compiled else {
            return;
        };
        match &mut self.kernel {
            Some(k) if k.dims() == state.lattice.dims() => {
                k.ensure_fresh(&state.lattice, state.mutation_epoch());
            }
            _ => {
                let mut k = SiteKernel::new(Arc::clone(compiled), &state.lattice);
                k.note_epoch(state.mutation_epoch());
                self.kernel = Some(k);
            }
        }
    }

    /// Execute one event; returns `None` when nothing is enabled (absorbing
    /// state — e.g. a poisoned ZGB surface with no desorption).
    pub fn step(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        changes: &mut Vec<(Site, u8, u8)>,
    ) -> Option<Event> {
        self.step_until(state, rng, changes, f64::INFINITY)
    }

    /// Like [`step`](Self::step), but refuses to execute an event whose time
    /// would exceed `t_end`; in that case the clock is clamped to `t_end`
    /// and `None` is returned (the exact stopping rule of event-driven DMC).
    pub fn step_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        changes: &mut Vec<(Site, u8, u8)>,
        t_end: f64,
    ) -> Option<Event> {
        self.ensure_kernel(state);
        let total = self.total_propensity();
        if total <= 0.0 {
            return None;
        }
        let dt = exponential(rng, total);
        if state.time + dt > t_end {
            state.time = t_end;
            return None;
        }
        // Select the reaction type proportionally to rate · |enabled|.
        let mut x = rng.f64() * total;
        let mut chosen = self.enabled.len() - 1;
        for (ri, set) in self.enabled.iter().enumerate() {
            let w = self.model.reaction(ri).rate() * set.len() as f64;
            if x < w {
                chosen = ri;
                break;
            }
            x -= w;
        }
        // Guard against float drift selecting an empty set.
        if self.enabled[chosen].is_empty() {
            let fallback = self.enabled.iter().position(|s| !s.is_empty())?;
            chosen = fallback;
        }
        let site = self.enabled[chosen].sample(rng);
        state.time += dt;
        changes.clear();
        let rt = self.model.reaction(chosen);
        debug_assert!(rt.is_enabled(&state.lattice, site));
        rt.execute(&mut state.lattice, site, changes);
        state.apply_changes(changes);
        if let Some(kernel) = &mut self.kernel {
            // Masks must reflect the post-change lattice before the
            // enabled-set refresh reads them.
            kernel.apply_changes(&state.lattice, changes);
            kernel.note_epoch(state.mutation_epoch());
        }
        for &(z, _, _) in changes.iter() {
            self.refresh_around(&state.lattice, z);
        }
        Some(Event {
            time: state.time,
            site,
            reaction: chosen,
            executed: true,
        })
    }

    /// Run until `t_end` (or until no reaction is enabled).
    pub fn run_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let mut changes = Vec::with_capacity(4);
        while state.time < t_end {
            let Some(event) = self.step_until(state, rng, &mut changes, t_end) else {
                break;
            };
            if let Some(rec) = recorder.as_deref_mut() {
                // One event changes only a few sites, so sampling the grid
                // points in (t_prev, event.time] with the post-event
                // coverage is accurate to within one event.
                rec.record_until(event.time, &state.coverage);
            }
            stats.trials += 1;
            stats.executed += 1;
            hook.on_event(event);
        }
        if let Some(rec) = recorder {
            rec.record(t_end, &state.coverage);
        }
        stats
    }

    /// Consistency check: rebuild the index from scratch and compare
    /// (tests / debug only — O(N·|T|)).
    pub fn index_is_consistent(&self, lattice: &Lattice) -> bool {
        for (ri, rt) in self.model.reactions().iter().enumerate() {
            for site in lattice.dims().iter_sites() {
                if rt.is_enabled(lattice, site) != self.enabled[ri].contains(site) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NoHook;
    use psr_lattice::Dims;
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;
    use psr_rng::rng_from_seed;

    fn ab_model() -> Model {
        ModelBuilder::new(&["*", "A", "B"])
            .reaction("A ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .reaction("A->B", 2.0, |r| {
                r.site((0, 0), "A", "B");
            })
            .reaction_rotations("AB des", 0.5, 4, |r| {
                r.site((0, 0), "A", "*").site((1, 0), "B", "*");
            })
            .build()
    }

    #[test]
    fn initial_index_matches_scan() {
        let model = ab_model();
        let lattice = Lattice::filled(Dims::new(6, 6), 0);
        let vssm = Vssm::new(&model, &lattice);
        assert!(vssm.index_is_consistent(&lattice));
        assert_eq!(vssm.enabled_count(0), 36);
        assert_eq!(vssm.enabled_count(1), 0);
        assert_eq!(vssm.total_propensity(), 36.0);
    }

    #[test]
    fn index_stays_consistent_through_events() {
        let model = ab_model();
        let lattice = Lattice::filled(Dims::new(6, 6), 0);
        let mut state = SimState::new(lattice, &model);
        let mut vssm = Vssm::new(&model, &state.lattice);
        let mut rng = rng_from_seed(21);
        let mut changes = Vec::new();
        for i in 0..500 {
            if vssm.step(&mut state, &mut rng, &mut changes).is_none() {
                break;
            }
            if i % 50 == 0 {
                assert!(
                    vssm.index_is_consistent(&state.lattice),
                    "index diverged at event {i}"
                );
            }
        }
        assert!(vssm.index_is_consistent(&state.lattice));
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn absorbing_state_stops_simulation() {
        // Pure adsorption fills the lattice and then nothing is enabled.
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .build();
        let mut state = SimState::new(Lattice::filled(Dims::new(4, 4), 0), &model);
        let mut vssm = Vssm::new(&model, &state.lattice);
        let mut rng = rng_from_seed(8);
        let stats = vssm.run_until(&mut state, &mut rng, 1e9, None, &mut NoHook);
        assert_eq!(stats.executed, 16, "exactly one adsorption per site");
        assert_eq!(state.coverage.count(1), 16);
        assert_eq!(vssm.total_propensity(), 0.0);
    }

    #[test]
    fn kinetics_agree_with_rsm_langmuir() {
        // VSSM and RSM must both reproduce θ(t) = 1 − e^(−t).
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .build();
        let mut state = SimState::new(Lattice::filled(Dims::new(80, 80), 0), &model);
        let mut vssm = Vssm::new(&model, &state.lattice);
        let mut rng = rng_from_seed(31);
        vssm.run_until(&mut state, &mut rng, 1.0, None, &mut NoHook);
        let theta = state.coverage.fraction(1);
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (theta - expected).abs() < 0.02,
            "VSSM coverage {theta} vs analytic {expected}"
        );
    }

    #[test]
    fn zgb_vssm_runs_and_stays_consistent() {
        let model = zgb_ziff(0.5, 4.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(12, 12), 0), &model);
        let mut vssm = Vssm::new(&model, &state.lattice);
        let mut rng = rng_from_seed(77);
        vssm.run_until(&mut state, &mut rng, 2.0, None, &mut NoHook);
        assert!(vssm.index_is_consistent(&state.lattice));
    }

    #[test]
    fn site_set_insert_remove() {
        let mut set = SiteSet::new(10);
        set.insert(Site(3));
        set.insert(Site(7));
        set.insert(Site(3)); // duplicate, ignored
        assert_eq!(set.len(), 2);
        set.remove(Site(3));
        assert_eq!(set.len(), 1);
        assert!(set.contains(Site(7)));
        assert!(!set.contains(Site(3)));
        set.remove(Site(3)); // absent, ignored
        assert_eq!(set.len(), 1);
    }
}
