//! A segment tree over reaction propensities: O(log n) sampling and update.
//!
//! The plain [`crate::Vssm`] keeps one site list per reaction *type* and
//! scans the types linearly per event — ideal when `|T|` is small and all
//! instances of a type share one rate. The classic alternative from the KMC
//! literature (and the Segers taxonomy's tree-selection methods) indexes
//! the propensity of every `(site, reaction)` pair in a binary tree, giving
//! logarithmic selection regardless of how rates are structured. This is
//! the backing store for [`crate::vssm_tree::VssmTree`] and is benchmarked
//! against the linear scan in `ablation_sampling`.

use psr_rng::SimRng;

/// A fixed-capacity segment tree over non-negative weights.
#[derive(Clone, Debug)]
pub struct PropensityTree {
    /// Number of leaves (padded to a power of two).
    leaves: usize,
    /// Heap-layout tree: `tree[1]` is the root; leaf `i` lives at
    /// `leaves + i`.
    tree: Vec<f64>,
}

impl PropensityTree {
    /// A tree for `n` weights, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "tree needs at least one slot");
        let leaves = n.next_power_of_two();
        PropensityTree {
            leaves,
            tree: vec![0.0; 2 * leaves],
        }
    }

    /// Number of addressable slots.
    pub fn capacity(&self) -> usize {
        self.leaves
    }

    /// Total weight (the root).
    pub fn total(&self) -> f64 {
        self.tree[1]
    }

    /// Current weight of slot `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.tree[self.leaves + i]
    }

    /// Set slot `i` to `weight`, updating ancestors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `weight` is negative/non-finite.
    pub fn set(&mut self, i: usize, weight: f64) {
        assert!(i < self.leaves, "slot {i} out of range");
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "weight must be finite and >= 0, got {weight}"
        );
        let mut node = self.leaves + i;
        self.tree[node] = weight;
        node /= 2;
        while node >= 1 {
            self.tree[node] = self.tree[2 * node] + self.tree[2 * node + 1];
            if node == 1 {
                break;
            }
            node /= 2;
        }
    }

    /// Sample a slot with probability proportional to its weight.
    ///
    /// Returns `None` when the total weight is zero.
    pub fn sample(&self, rng: &mut SimRng) -> Option<usize> {
        let total = self.total();
        if total <= 0.0 {
            return None;
        }
        let mut x = rng.f64() * total;
        let mut node = 1usize;
        while node < self.leaves {
            let left = self.tree[2 * node];
            if x < left {
                node *= 2;
            } else {
                x -= left;
                node = 2 * node + 1;
            }
        }
        let slot = node - self.leaves;
        // Float drift can land on a zero-weight leaf; walk to a non-zero
        // neighbor (total > 0 guarantees one exists).
        if self.tree[node] <= 0.0 {
            return (0..self.leaves).find(|&i| self.tree[self.leaves + i] > 0.0);
        }
        Some(slot)
    }

    /// Recompute all internal nodes from the leaves (O(n); used after bulk
    /// leaf writes and by consistency tests).
    pub fn rebuild(&mut self) {
        for node in (1..self.leaves).rev() {
            self.tree[node] = self.tree[2 * node] + self.tree[2 * node + 1];
        }
    }

    /// True if internal nodes equal the sum of their children (within
    /// tolerance); test helper.
    pub fn is_consistent(&self) -> bool {
        for node in 1..self.leaves {
            let sum = self.tree[2 * node] + self.tree[2 * node + 1];
            if (self.tree[node] - sum).abs() > 1e-9 * (1.0 + sum.abs()) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_rng::rng_from_seed;

    #[test]
    fn set_and_total() {
        let mut t = PropensityTree::new(5);
        t.set(0, 1.0);
        t.set(3, 2.5);
        assert!((t.total() - 3.5).abs() < 1e-12);
        assert_eq!(t.get(0), 1.0);
        assert_eq!(t.get(1), 0.0);
        t.set(0, 0.0);
        assert!((t.total() - 2.5).abs() < 1e-12);
        assert!(t.is_consistent());
    }

    #[test]
    fn sampling_matches_weights() {
        let mut t = PropensityTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 0.0);
        t.set(3, 7.0);
        let mut rng = rng_from_seed(5);
        let mut counts = [0usize; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[t.sample(&mut rng).expect("non-zero total")] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[0] as f64 / draws as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / draws as f64 - 0.2).abs() < 0.01);
        assert!((counts[3] as f64 / draws as f64 - 0.7).abs() < 0.01);
    }

    #[test]
    fn empty_tree_samples_none() {
        let t = PropensityTree::new(8);
        let mut rng = rng_from_seed(1);
        assert_eq!(t.sample(&mut rng), None);
    }

    #[test]
    fn non_power_of_two_capacity_padded() {
        let t = PropensityTree::new(5);
        assert_eq!(t.capacity(), 8);
    }

    #[test]
    fn rebuild_after_bulk_writes() {
        let mut t = PropensityTree::new(16);
        for i in 0..16 {
            // Write leaves directly through set (ancestors updated), then
            // scramble one internal node and fix it with rebuild.
            t.set(i, i as f64);
        }
        let total = t.total();
        t.tree[1] = -1.0;
        assert!(!t.is_consistent());
        t.rebuild();
        assert!(t.is_consistent());
        assert!((t.total() - total).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        PropensityTree::new(4).set(4, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        PropensityTree::new(4).set(0, -1.0);
    }
}
