//! Segers' correctness criteria (paper §6).
//!
//! An algorithm simulates the Master Equation correctly if only enabled
//! reactions are performed and:
//!
//! 1. the waiting time for a reaction of type `i` is exponentially
//!    distributed with its rate constant (`exp(−k_i t)`);
//! 2. reaction types fire in proportion to their rate constants among the
//!    enabled reactions.
//!
//! The probes here instrument any algorithm through the [`EventHook`]
//! mechanism. Used against a model whose reactions are *always enabled*
//! (identity transforms), criterion 1 becomes exact: the inter-fire times of
//! type `i` at a fixed site must be `Exp(k_i)` — e.g. under RSM,
//! `P(fire/trial) = (1/N)(k_i/K)` and trials arrive at rate `N·K`, giving a
//! thinned Poisson process of rate `k_i`.

use crate::events::{Event, EventHook};
use psr_lattice::Site;
use psr_model::{Model, ModelBuilder};
use psr_stats::{ks_exponential, KsResult};

/// Records inter-fire waiting times of one `(site, reaction)` pair.
#[derive(Clone, Debug)]
pub struct WaitingTimeSampler {
    site: Site,
    reaction: usize,
    last_fire: f64,
    /// Collected waiting times.
    pub samples: Vec<f64>,
}

impl WaitingTimeSampler {
    /// Track reaction `reaction` at `site`, with the clock starting at 0.
    pub fn new(site: Site, reaction: usize) -> Self {
        WaitingTimeSampler {
            site,
            reaction,
            last_fire: 0.0,
            samples: Vec::new(),
        }
    }

    /// KS-test the samples against `Exp(rate)`.
    ///
    /// # Panics
    ///
    /// Panics if no samples were collected.
    pub fn ks_against(&self, rate: f64) -> KsResult {
        ks_exponential(&self.samples, rate)
    }
}

impl EventHook for WaitingTimeSampler {
    fn on_event(&mut self, event: Event) {
        if event.executed && event.site == self.site && event.reaction == self.reaction {
            self.samples.push(event.time - self.last_fire);
            self.last_fire = event.time;
        }
    }
}

/// Counts executed events per reaction type (criterion 2).
#[derive(Clone, Debug)]
pub struct TypeFrequencyCounter {
    /// Executed count per reaction-type index.
    pub counts: Vec<u64>,
}

impl TypeFrequencyCounter {
    /// A counter for `num_reactions` types.
    pub fn new(num_reactions: usize) -> Self {
        TypeFrequencyCounter {
            counts: vec![0; num_reactions],
        }
    }

    /// Total executed events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Empirical frequency of each type.
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Largest absolute deviation between the empirical frequencies and the
    /// rate-proportional expectation `k_i / K`.
    pub fn max_deviation_from(&self, model: &Model) -> f64 {
        let k = model.total_rate();
        self.frequencies()
            .iter()
            .zip(model.rate_weights())
            .map(|(&f, ki)| (f - ki / k).abs())
            .fold(0.0, f64::max)
    }
}

impl EventHook for TypeFrequencyCounter {
    fn on_event(&mut self, event: Event) {
        if event.executed {
            self.counts[event.reaction] += 1;
        }
    }
}

/// Run two hooks side by side.
#[derive(Debug, Default)]
pub struct PairHook<A, B>(pub A, pub B);

impl<A: EventHook, B: EventHook> EventHook for PairHook<A, B> {
    fn on_event(&mut self, event: Event) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
}

/// A model whose reaction types never change the lattice (src = tgt = `*`),
/// so every type is enabled at every site forever — the exact setting of the
/// waiting-time criterion.
pub fn always_enabled_model(rates: &[f64]) -> Model {
    assert!(!rates.is_empty(), "need at least one rate");
    let mut b = ModelBuilder::new(&["*"]);
    for (i, &k) in rates.iter().enumerate() {
        b = b.reaction(format!("touch{i}"), k, |r| {
            r.site((0, 0), "*", "*");
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsm::Rsm;
    use crate::sim::SimState;
    use psr_lattice::{Dims, Lattice};
    use psr_rng::rng_from_seed;

    #[test]
    fn rsm_waiting_times_are_exponential() {
        // Criterion 1: type with k = 2 at a fixed site fires as Exp(2).
        let model = always_enabled_model(&[2.0, 1.0]);
        let mut state = SimState::new(Lattice::filled(Dims::new(4, 4), 0), &model);
        let mut rng = rng_from_seed(42);
        let mut rsm = Rsm::new(&model);
        let mut probe = WaitingTimeSampler::new(Site(5), 0);
        rsm.run_until(&mut state, &mut rng, 2000.0, None, &mut probe);
        assert!(
            probe.samples.len() > 1000,
            "only {} fires",
            probe.samples.len()
        );
        let ks = probe.ks_against(2.0);
        assert!(
            ks.accepts(0.01),
            "KS statistic {} (scaled {}) rejects exponential",
            ks.statistic,
            ks.scaled
        );
        // The wrong rate must be rejected.
        assert!(!probe.ks_against(4.0).accepts(0.01));
    }

    #[test]
    fn rsm_type_frequencies_match_rates() {
        // Criterion 2: executed counts ∝ k_i when everything is enabled.
        let model = always_enabled_model(&[1.0, 2.0, 5.0]);
        let mut state = SimState::new(Lattice::filled(Dims::new(8, 8), 0), &model);
        let mut rng = rng_from_seed(17);
        let mut rsm = Rsm::new(&model);
        let mut counter = TypeFrequencyCounter::new(model.num_reactions());
        rsm.run_mc_steps(&mut state, &mut rng, 200, None, &mut counter);
        let dev = counter.max_deviation_from(&model);
        assert!(dev < 0.01, "frequency deviation {dev}");
        assert_eq!(counter.total(), 200 * 64);
    }

    #[test]
    fn pair_hook_feeds_both() {
        let mut hook = PairHook(TypeFrequencyCounter::new(1), TypeFrequencyCounter::new(1));
        hook.on_event(Event {
            time: 1.0,
            site: Site(0),
            reaction: 0,
            executed: true,
        });
        assert_eq!(hook.0.total(), 1);
        assert_eq!(hook.1.total(), 1);
    }

    #[test]
    fn counter_ignores_failed_trials() {
        let mut counter = TypeFrequencyCounter::new(2);
        counter.on_event(Event {
            time: 0.0,
            site: Site(0),
            reaction: 1,
            executed: false,
        });
        assert_eq!(counter.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rate")]
    fn empty_rates_panic() {
        always_enabled_model(&[]);
    }
}
