//! The First Reaction Method.
//!
//! The third classic DMC formulation (Segers taxonomy; Lukkien et al.,
//! Phys.Rev.E 58, 2598): every enabled reaction `(site, type)` carries a
//! tentative occurrence time `t + Exp(k)`; the earliest event fires, then
//! reactions invalidated by the lattice change are removed and newly enabled
//! ones scheduled. Exponential waiting times are memoryless, so rescheduling
//! a still-enabled reaction on re-validation does not bias the kinetics.
//!
//! The queue uses lazy deletion: a generation counter per `(site, type)`
//! invalidates stale heap entries when they surface.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::events::{Event, EventHook};
use crate::recorder::Recorder;
use crate::rsm::RunStats;
use crate::sim::SimState;
use psr_lattice::{Lattice, Site};
use psr_model::Model;
use psr_rng::{exponential, SimRng};

#[derive(Clone, Copy, Debug)]
struct QueuedEvent {
    time: f64,
    site: Site,
    reaction: u32,
    generation: u64,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the earliest time.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
    }
}

/// FRM simulator with a lazy-deletion event queue.
#[derive(Clone, Debug)]
pub struct Frm<'m> {
    model: &'m Model,
    queue: BinaryHeap<QueuedEvent>,
    /// Generation per (site, reaction); bumping invalidates queued entries.
    generation: Vec<u64>,
    /// Whether (site, reaction) currently has a live queue entry.
    scheduled: Vec<bool>,
    num_reactions: usize,
    anchor_offsets: Vec<Vec<psr_lattice::Offset>>,
}

impl<'m> Frm<'m> {
    /// Build the event queue by scanning `lattice`; tentative times start
    /// from `state_time` (usually 0).
    pub fn new(model: &'m Model, lattice: &Lattice, state_time: f64, rng: &mut SimRng) -> Self {
        let n = lattice.len();
        let num_reactions = model.num_reactions();
        let mut frm = Frm {
            model,
            queue: BinaryHeap::new(),
            generation: vec![0; n * num_reactions],
            scheduled: vec![false; n * num_reactions],
            num_reactions,
            anchor_offsets: model
                .reactions()
                .iter()
                .map(|rt| rt.transforms().iter().map(|t| t.offset.negated()).collect())
                .collect(),
        };
        for site in lattice.dims().iter_sites() {
            model.for_each_enabled(lattice, site, |ri, _| {
                frm.schedule(site, ri, state_time, rng);
            });
        }
        frm
    }

    #[inline]
    fn slot(&self, site: Site, ri: usize) -> usize {
        site.0 as usize * self.num_reactions + ri
    }

    fn schedule(&mut self, site: Site, ri: usize, now: f64, rng: &mut SimRng) {
        let slot = self.slot(site, ri);
        if self.scheduled[slot] {
            return;
        }
        let rate = self.model.reaction(ri).rate();
        if rate <= 0.0 {
            return;
        }
        self.scheduled[slot] = true;
        self.queue.push(QueuedEvent {
            time: now + exponential(rng, rate),
            site,
            reaction: ri as u32,
            generation: self.generation[slot],
        });
    }

    fn unschedule(&mut self, site: Site, ri: usize) {
        let slot = self.slot(site, ri);
        if self.scheduled[slot] {
            self.scheduled[slot] = false;
            self.generation[slot] += 1;
        }
    }

    /// Number of live queue entries (lazy entries excluded).
    pub fn live_events(&self) -> usize {
        self.scheduled.iter().filter(|&&s| s).count()
    }

    /// Execute the earliest event not after `t_end`. Returns `None` when the
    /// queue runs dry (absorbing state) or the next event is past `t_end`
    /// (clock clamps to `t_end`).
    pub fn step_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        changes: &mut Vec<(Site, u8, u8)>,
        t_end: f64,
    ) -> Option<Event> {
        loop {
            let &top = self.queue.peek()?;
            let slot = self.slot(top.site, top.reaction as usize);
            if !self.scheduled[slot] || self.generation[slot] != top.generation {
                self.queue.pop(); // stale entry
                continue;
            }
            if top.time > t_end {
                state.time = t_end;
                return None;
            }
            self.queue.pop();
            self.scheduled[slot] = false;
            self.generation[slot] += 1;

            let ri = top.reaction as usize;
            let rt = self.model.reaction(ri);
            debug_assert!(rt.is_enabled(&state.lattice, top.site));
            state.time = top.time;
            changes.clear();
            rt.execute(&mut state.lattice, top.site, changes);
            state.apply_changes(changes);

            // Revalidate every (anchor, reaction) whose pattern touches a
            // changed site.
            let dims = state.lattice.dims();
            let now = state.time;
            let changed_sites: Vec<Site> = changes.iter().map(|&(z, _, _)| z).collect();
            for z in changed_sites {
                for rj in 0..self.num_reactions {
                    for k in 0..self.anchor_offsets[rj].len() {
                        let anchor = dims.translate(z, self.anchor_offsets[rj][k]);
                        if self.model.reaction(rj).is_enabled(&state.lattice, anchor) {
                            self.schedule(anchor, rj, now, rng);
                        } else {
                            self.unschedule(anchor, rj);
                        }
                    }
                }
            }
            return Some(Event {
                time: state.time,
                site: top.site,
                reaction: ri,
                executed: true,
            });
        }
    }

    /// Run until `t_end` (or the absorbing state).
    pub fn run_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let mut changes = Vec::with_capacity(4);
        while state.time < t_end {
            let Some(event) = self.step_until(state, rng, &mut changes, t_end) else {
                break;
            };
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record_until(event.time, &state.coverage);
            }
            stats.trials += 1;
            stats.executed += 1;
            hook.on_event(event);
        }
        if let Some(rec) = recorder {
            rec.record(t_end, &state.coverage);
        }
        stats
    }

    /// Check the schedule against a fresh lattice scan (tests only).
    pub fn schedule_is_consistent(&self, lattice: &Lattice) -> bool {
        for site in lattice.dims().iter_sites() {
            for ri in 0..self.num_reactions {
                let enabled = self.model.reaction(ri).is_enabled(lattice, site)
                    && self.model.reaction(ri).rate() > 0.0;
                if enabled != self.scheduled[self.slot(site, ri)] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NoHook;
    use psr_lattice::Dims;
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;
    use psr_rng::rng_from_seed;

    fn adsorption(rate: f64) -> Model {
        ModelBuilder::new(&["*", "A"])
            .reaction("ads", rate, |r| {
                r.site((0, 0), "*", "A");
            })
            .build()
    }

    #[test]
    fn initial_schedule_matches_lattice() {
        let model = adsorption(1.0);
        let lattice = Lattice::filled(Dims::new(5, 5), 0);
        let mut rng = rng_from_seed(1);
        let frm = Frm::new(&model, &lattice, 0.0, &mut rng);
        assert_eq!(frm.live_events(), 25);
        assert!(frm.schedule_is_consistent(&lattice));
    }

    #[test]
    fn fills_lattice_and_drains_queue() {
        let model = adsorption(1.0);
        let lattice = Lattice::filled(Dims::new(4, 4), 0);
        let mut rng = rng_from_seed(2);
        let mut state = SimState::new(lattice, &model);
        let mut frm = Frm::new(&model, &state.lattice, 0.0, &mut rng);
        let stats = frm.run_until(&mut state, &mut rng, 1e9, None, &mut NoHook);
        assert_eq!(stats.executed, 16);
        assert_eq!(state.coverage.count(1), 16);
        assert_eq!(frm.live_events(), 0);
    }

    #[test]
    fn event_times_are_nondecreasing() {
        let model = zgb_ziff(0.5, 3.0);
        let lattice = Lattice::filled(Dims::new(8, 8), 0);
        let mut rng = rng_from_seed(3);
        let mut state = SimState::new(lattice, &model);
        let mut frm = Frm::new(&model, &state.lattice, 0.0, &mut rng);
        let mut last = 0.0;
        let mut ordered = true;
        frm.run_until(&mut state, &mut rng, 1.0, None, &mut |e: Event| {
            if e.time < last {
                ordered = false;
            }
            last = e.time;
        });
        assert!(ordered, "FRM must fire events in time order");
    }

    #[test]
    fn schedule_stays_consistent_through_zgb_run() {
        let model = zgb_ziff(0.4, 2.0);
        let lattice = Lattice::filled(Dims::new(6, 6), 0);
        let mut rng = rng_from_seed(4);
        let mut state = SimState::new(lattice, &model);
        let mut frm = Frm::new(&model, &state.lattice, 0.0, &mut rng);
        let mut changes = Vec::new();
        for _ in 0..300 {
            if frm
                .step_until(&mut state, &mut rng, &mut changes, f64::INFINITY)
                .is_none()
            {
                break;
            }
        }
        assert!(frm.schedule_is_consistent(&state.lattice));
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn langmuir_kinetics_match_analytic() {
        let model = adsorption(1.0);
        let lattice = Lattice::filled(Dims::new(80, 80), 0);
        let mut rng = rng_from_seed(5);
        let mut state = SimState::new(lattice, &model);
        let mut frm = Frm::new(&model, &state.lattice, 0.0, &mut rng);
        frm.run_until(&mut state, &mut rng, 1.0, None, &mut NoHook);
        let theta = state.coverage.fraction(1);
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (theta - expected).abs() < 0.02,
            "FRM coverage {theta} vs analytic {expected}"
        );
    }

    #[test]
    fn stop_time_respected() {
        let model = adsorption(0.001); // slow: most events past t_end
        let lattice = Lattice::filled(Dims::new(4, 4), 0);
        let mut rng = rng_from_seed(6);
        let mut state = SimState::new(lattice, &model);
        let mut frm = Frm::new(&model, &state.lattice, 0.0, &mut rng);
        frm.run_until(&mut state, &mut rng, 0.5, None, &mut NoHook);
        assert!((state.time - 0.5).abs() < 1e-12 || state.time < 0.5);
    }
}
