//! Shared simulation state: lattice + incrementally tracked coverage + clock.

use psr_lattice::{Coverage, Lattice, Site};
use psr_model::Model;
use psr_rng::SimRng;

/// The mutable state every algorithm advances: the configuration `S`, its
/// coverage counts, and the simulated time.
#[derive(Clone, Debug)]
pub struct SimState {
    /// The configuration.
    pub lattice: Lattice,
    /// Incrementally maintained per-species counts.
    pub coverage: Coverage,
    /// Simulated (real) time.
    pub time: f64,
    /// Monotone mutation epoch: bumped whenever the lattice is changed
    /// through this state's tracked entry points ([`apply_changes`]
    /// (Self::apply_changes), [`randomize`](Self::randomize), or an explicit
    /// [`bump_mutations`](Self::bump_mutations) after direct lattice
    /// writes). Incremental caches (the per-chunk propensity cache in
    /// `psr-ca`) compare this against their last-seen epoch to detect that
    /// the lattice changed behind their back and a rescan is needed.
    mutations: u64,
}

impl SimState {
    /// Wrap a lattice, computing initial coverage for `model`'s species.
    pub fn new(lattice: Lattice, model: &Model) -> Self {
        let coverage = Coverage::from_lattice(&lattice, model.species().len());
        SimState {
            lattice,
            coverage,
            time: 0.0,
            mutations: 0,
        }
    }

    /// Number of lattice sites `N`.
    pub fn num_sites(&self) -> usize {
        self.lattice.len()
    }

    /// The current mutation epoch (see the `mutations` field).
    pub fn mutation_epoch(&self) -> u64 {
        self.mutations
    }

    /// Record that the lattice was mutated outside the tracked entry
    /// points, invalidating any epoch-checked incremental caches.
    pub fn bump_mutations(&mut self) {
        self.mutations += 1;
    }

    /// Apply recorded changes to the coverage tracker.
    #[inline]
    pub fn apply_changes(&mut self, changes: &[(Site, u8, u8)]) {
        for &(_, old, new) in changes {
            self.coverage.transition(old, new);
        }
        self.mutations += changes.len() as u64;
    }

    /// Randomise the lattice: each site takes a uniformly random state from
    /// the model's species set (used by tests; physical initial conditions
    /// are usually the empty surface).
    pub fn randomize(&mut self, model: &Model, rng: &mut SimRng) {
        let num = model.species().len();
        for i in 0..self.lattice.len() {
            let s = rng.index(num) as u8;
            let site = Site(i as u32);
            let old = self.lattice.set(site, s);
            self.coverage.transition(old, s);
        }
        self.mutations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::Dims;
    use psr_model::library::zgb::{zgb_ziff, ZGB_SPECIES};

    #[test]
    fn new_state_has_consistent_coverage() {
        let model = zgb_ziff(0.5, 1.0);
        let state = SimState::new(Lattice::filled(Dims::new(4, 4), 0), &model);
        assert_eq!(state.coverage.count(0), 16);
        assert_eq!(state.time, 0.0);
        assert_eq!(state.num_sites(), 16);
    }

    #[test]
    fn apply_changes_updates_coverage() {
        let model = zgb_ziff(0.5, 1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(2, 2), 0), &model);
        let co = ZGB_SPECIES.co.id();
        state.lattice.set(Site(0), co);
        state.apply_changes(&[(Site(0), 0, co)]);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn randomize_keeps_coverage_consistent() {
        let model = zgb_ziff(0.5, 1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(5, 5), 0), &model);
        let mut rng = psr_rng::rng_from_seed(1);
        state.randomize(&model, &mut rng);
        assert!(state.coverage.matches(&state.lattice));
    }
}
