//! Windowed reaction-rate measurement (turnover frequencies).
//!
//! The natural activity observable for catalysis models is the *production
//! rate*: executed events of a reaction group per site per unit time. For
//! ZGB this is the CO₂ turnover frequency — the quantity that vanishes in
//! both poisoned phases and peaks inside the reactive window. The
//! [`RateMeter`] hook buckets executed events into fixed time windows and
//! exposes per-group rate time series.

use crate::events::{Event, EventHook};
use psr_stats::TimeSeries;

/// Buckets executed events of selected reaction groups into time windows.
#[derive(Clone, Debug)]
pub struct RateMeter {
    window: f64,
    num_sites: f64,
    /// Reaction index → group index (or usize::MAX for untracked).
    group_of: Vec<usize>,
    /// Per group: completed windows' counts.
    completed: Vec<Vec<u64>>,
    /// Per group: count in the currently open window.
    open: Vec<u64>,
    /// Index of the currently open window.
    open_window: u64,
}

impl RateMeter {
    /// Track `groups` of reaction indices (e.g. the four CO+O orientation
    /// versions as one group) over windows of `window` time units on a
    /// lattice of `num_sites` sites.
    ///
    /// # Panics
    ///
    /// Panics if `window <= 0`, `num_sites == 0` or a reaction index
    /// appears in two groups.
    pub fn new(num_reactions: usize, num_sites: usize, window: f64, groups: &[&[usize]]) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive"
        );
        assert!(num_sites > 0, "need at least one site");
        let mut group_of = vec![usize::MAX; num_reactions];
        for (gi, group) in groups.iter().enumerate() {
            for &ri in *group {
                assert!(ri < num_reactions, "reaction index {ri} out of range");
                assert_eq!(
                    group_of[ri],
                    usize::MAX,
                    "reaction {ri} assigned to two groups"
                );
                group_of[ri] = gi;
            }
        }
        RateMeter {
            window,
            num_sites: num_sites as f64,
            group_of,
            completed: vec![Vec::new(); groups.len()],
            open: vec![0; groups.len()],
            open_window: 0,
        }
    }

    fn roll_to(&mut self, window_index: u64) {
        while self.open_window < window_index {
            for (gi, count) in self.open.iter_mut().enumerate() {
                self.completed[gi].push(*count);
                *count = 0;
            }
            self.open_window += 1;
        }
    }

    /// Number of completed windows.
    pub fn windows_completed(&self) -> usize {
        self.completed.first().map_or(0, Vec::len)
    }

    /// Rate series of group `gi`: events / site / time, one sample per
    /// completed window (timestamped at the window centre).
    pub fn rate_series(&self, gi: usize) -> TimeSeries {
        let mut series = TimeSeries::new();
        for (w, &count) in self.completed[gi].iter().enumerate() {
            let t = (w as f64 + 0.5) * self.window;
            series.push(t, count as f64 / (self.num_sites * self.window));
        }
        series
    }

    /// Mean rate of group `gi` over all completed windows.
    pub fn mean_rate(&self, gi: usize) -> f64 {
        let windows = self.completed[gi].len();
        if windows == 0 {
            return 0.0;
        }
        let total: u64 = self.completed[gi].iter().sum();
        total as f64 / (self.num_sites * self.window * windows as f64)
    }
}

impl EventHook for RateMeter {
    fn on_event(&mut self, event: Event) {
        let window_index = (event.time / self.window) as u64;
        self.roll_to(window_index);
        if event.executed {
            let gi = self.group_of[event.reaction];
            if gi != usize::MAX {
                self.open[gi] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::Site;

    fn event(time: f64, reaction: usize, executed: bool) -> Event {
        Event {
            time,
            site: Site(0),
            reaction,
            executed,
        }
    }

    #[test]
    fn windows_roll_and_rates_computed() {
        // 10 sites, window 1.0, group {0}.
        let mut meter = RateMeter::new(2, 10, 1.0, &[&[0]]);
        meter.on_event(event(0.2, 0, true));
        meter.on_event(event(0.7, 0, true));
        meter.on_event(event(1.3, 0, true)); // rolls window 0
        meter.on_event(event(2.1, 1, true)); // untracked type; rolls window 1
        assert_eq!(meter.windows_completed(), 2);
        let series = meter.rate_series(0);
        // Window 0: 2 events / (10 sites · 1.0) = 0.2; window 1: 0.1.
        assert_eq!(series.values(), &[0.2, 0.1]);
        assert_eq!(series.times(), &[0.5, 1.5]);
        assert!((meter.mean_rate(0) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn failed_trials_do_not_count() {
        let mut meter = RateMeter::new(1, 4, 1.0, &[&[0]]);
        meter.on_event(event(0.5, 0, false));
        meter.on_event(event(1.5, 0, true));
        meter.on_event(event(2.5, 0, true));
        assert_eq!(meter.rate_series(0).values(), &[0.0, 0.25]);
    }

    #[test]
    fn multiple_groups_tracked_independently() {
        let mut meter = RateMeter::new(3, 2, 2.0, &[&[0, 1], &[2]]);
        meter.on_event(event(0.1, 0, true));
        meter.on_event(event(0.2, 1, true));
        meter.on_event(event(0.3, 2, true));
        meter.on_event(event(2.5, 2, true));
        assert_eq!(meter.windows_completed(), 1);
        assert_eq!(meter.rate_series(0).values(), &[0.5]); // 2/(2·2)
        assert_eq!(meter.rate_series(1).values(), &[0.25]); // 1/(2·2)
    }

    #[test]
    fn empty_meter_reports_zero() {
        let meter = RateMeter::new(1, 1, 1.0, &[&[0]]);
        assert_eq!(meter.mean_rate(0), 0.0);
        assert!(meter.rate_series(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn duplicate_group_membership_panics() {
        RateMeter::new(2, 1, 1.0, &[&[0], &[0]]);
    }
}
