//! Dynamic Monte Carlo simulation of surface reactions.
//!
//! Implements the DMC side of the paper (§2–3):
//!
//! - [`rsm`] — the **Random Selection Method**, the paper's reference
//!   algorithm: pick a random site, pick a reaction type with probability
//!   `k_i / K`, execute if enabled, advance time by `Exp(N·K)`;
//! - [`vssm`] — the Variable Step Size Method (Gillespie's direct method)
//!   over an incrementally maintained enabled-reaction index; a rejection-
//!   free baseline from the Segers taxonomy the paper builds on;
//! - [`frm`] — the First Reaction Method with a lazy-deletion event queue;
//! - [`master_equation`] — an **exact** Master Equation integrator for tiny
//!   lattices (full state-space enumeration + RK4), the ground truth that
//!   the §6 correctness criteria compare against;
//! - [`correctness`] — Segers' two criteria: exponential waiting times and
//!   rate-proportional selection;
//! - [`recorder`] — coverage sampling shared by all algorithms (DMC and CA);
//! - [`events`] — the execution hook used by probes and tests.
//!
//! All algorithms simulate the same [`psr_model::Model`] on the same
//! [`psr_lattice::Lattice`] and are statistically equivalent; they differ in
//! cost per event and in how they extend to parallelism (`psr-ca`,
//! `psr-parallel`).

#![warn(missing_docs)]

pub mod correctness;
pub mod events;
pub mod frm;
pub mod master_equation;
pub mod propensity_tree;
pub mod rate_meter;
pub mod recorder;
pub mod rsm;
pub mod sim;
pub mod vssm;
pub mod vssm_tree;

pub use events::{Event, EventHook, NoHook};
pub use frm::Frm;
pub use master_equation::MasterEquation;
pub use propensity_tree::PropensityTree;
pub use rate_meter::RateMeter;
pub use recorder::Recorder;
pub use rsm::{Rsm, RunStats, TimeMode};
pub use sim::SimState;
pub use vssm::{SiteSet, Vssm};
pub use vssm_tree::VssmTree;
