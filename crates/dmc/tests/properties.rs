//! Property-based tests for the DMC algorithms' bookkeeping invariants.

use proptest::prelude::*;
use psr_dmc::events::NoHook;
use psr_dmc::frm::Frm;
use psr_dmc::master_equation::MasterEquation;
use psr_dmc::rsm::Rsm;
use psr_dmc::sim::SimState;
use psr_dmc::vssm::Vssm;
use psr_lattice::{Dims, Lattice};
use psr_model::{Model, ModelBuilder};
use psr_rng::rng_from_seed;

/// A random model over 3 species with single-site or axis-pair patterns.
fn model_strategy() -> impl Strategy<Value = Model> {
    prop::collection::vec(
        (
            prop::bool::ANY,
            0u32..4,
            (0u8..3, 0u8..3, 0u8..3, 0u8..3),
            0.05f64..5.0,
        ),
        1..5,
    )
    .prop_map(|specs| {
        let names = ["*", "A", "B"];
        let mut b = ModelBuilder::new(&names);
        for (i, (pair, orient, (s0, t0, s1, t1), rate)) in specs.into_iter().enumerate() {
            b = b.reaction(format!("r{i}"), rate, |r| {
                r.site((0, 0), names[s0 as usize], names[t0 as usize]);
                if pair {
                    let off = match orient {
                        0 => (1, 0),
                        1 => (0, 1),
                        2 => (-1, 0),
                        _ => (0, -1),
                    };
                    r.site(off, names[s1 as usize], names[t1 as usize]);
                }
            });
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vssm_index_consistent_after_random_runs(
        model in model_strategy(),
        seed in 0u64..10_000,
    ) {
        let dims = Dims::new(6, 6);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut vssm = Vssm::new(&model, &state.lattice);
        let mut rng = rng_from_seed(seed);
        let mut changes = Vec::new();
        for _ in 0..200 {
            if vssm.step(&mut state, &mut rng, &mut changes).is_none() {
                break;
            }
        }
        prop_assert!(vssm.index_is_consistent(&state.lattice));
        prop_assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn frm_schedule_consistent_after_random_runs(
        model in model_strategy(),
        seed in 0u64..10_000,
    ) {
        let dims = Dims::new(5, 5);
        let mut rng = rng_from_seed(seed);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut frm = Frm::new(&model, &state.lattice, 0.0, &mut rng);
        let mut changes = Vec::new();
        for _ in 0..200 {
            if frm
                .step_until(&mut state, &mut rng, &mut changes, f64::INFINITY)
                .is_none()
            {
                break;
            }
        }
        prop_assert!(frm.schedule_is_consistent(&state.lattice));
        prop_assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn rsm_time_is_monotone_and_coverage_consistent(
        model in model_strategy(),
        seed in 0u64..10_000,
    ) {
        let dims = Dims::new(6, 6);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut rng = rng_from_seed(seed);
        let mut rsm = Rsm::new(&model);
        let mut last_time = 0.0;
        let mut ordered = true;
        rsm.run_mc_steps(&mut state, &mut rng, 5, None, &mut |e: psr_dmc::events::Event| {
            if e.time < last_time {
                ordered = false;
            }
            last_time = e.time;
        });
        prop_assert!(ordered, "event times went backwards");
        prop_assert!(state.coverage.matches(&state.lattice));
        prop_assert!(state.time > 0.0);
    }

    #[test]
    fn master_equation_conserves_probability(
        model in model_strategy(),
        steps in 1u32..20,
    ) {
        let dims = Dims::new(2, 2);
        let initial = Lattice::filled(dims, 0);
        let mut me = MasterEquation::new(&model, &initial);
        for _ in 0..steps {
            me.rk4_step(0.01);
        }
        prop_assert!((me.total_probability() - 1.0).abs() < 1e-6);
        // Expected coverages stay inside [0, 1].
        for s in 0..3u8 {
            let c = me.expected_coverage(s);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&c), "coverage {c}");
        }
    }

    #[test]
    fn rsm_and_vssm_agree_on_final_mean_coverage(
        seed in 0u64..500,
    ) {
        // Fixed simple model (adsorption + desorption): both algorithms
        // must produce statistically identical equilibrium coverage
        // k_ads/(k_ads+k_des) = 2/3 on average.
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 2.0, |r| { r.site((0, 0), "*", "A"); })
            .reaction("des", 1.0, |r| { r.site((0, 0), "A", "*"); })
            .build();
        let dims = Dims::new(12, 12);
        let mut s1 = SimState::new(Lattice::filled(dims, 0), &model);
        let mut r1 = rng_from_seed(seed);
        Rsm::new(&model).run_until(&mut s1, &mut r1, 20.0, None, &mut NoHook);

        let mut s2 = SimState::new(Lattice::filled(dims, 0), &model);
        let mut vssm = Vssm::new(&model, &s2.lattice);
        let mut r2 = rng_from_seed(seed + 1);
        vssm.run_until(&mut s2, &mut r2, 20.0, None, &mut NoHook);

        let eq = 2.0 / 3.0;
        prop_assert!((s1.coverage.fraction(1) - eq).abs() < 0.15);
        prop_assert!((s2.coverage.fraction(1) - eq).abs() < 0.15);
    }
}
