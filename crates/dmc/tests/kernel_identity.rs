//! Compiled kernels must not change DMC trajectories: RSM trials and VSSM
//! event selection read the same enabled predicate and consume the same
//! random numbers with either matcher.

use psr_dmc::events::NoHook;
use psr_dmc::rsm::{Rsm, TimeMode};
use psr_dmc::sim::SimState;
use psr_dmc::vssm::Vssm;
use psr_lattice::{Dims, Lattice};
use psr_model::library::kuzovkov::{kuzovkov_model, KuzovkovParams};
use psr_model::library::zgb::zgb_ziff;
use psr_rng::rng_from_seed;

const SEED: u64 = 0xFACE;

#[test]
fn rsm_trajectories_bit_identical_for_1000_mc_steps() {
    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(12);
    for mode in [TimeMode::Discretized, TimeMode::Stochastic] {
        let run = |naive: bool| {
            let mut state = SimState::new(Lattice::filled(dims, 0), &model);
            let mut rng = rng_from_seed(SEED);
            Rsm::new(&model)
                .with_time_mode(mode)
                .with_naive_matching(naive)
                .run_mc_steps(&mut state, &mut rng, 1000, None, &mut NoHook);
            (state.lattice, state.time, rng.f64())
        };
        assert_eq!(run(true), run(false), "mode {mode:?}");
    }
}

#[test]
fn vssm_trajectories_bit_identical_for_1000_events() {
    for (name, model) in [
        ("zgb", zgb_ziff(0.45, 10.0)),
        ("kuzovkov", kuzovkov_model(KuzovkovParams::default())),
    ] {
        let run = |naive: bool| {
            let mut state = SimState::new(Lattice::filled(Dims::square(12), 0), &model);
            let mut vssm = Vssm::new(&model, &state.lattice).with_naive_matching(naive);
            let mut rng = rng_from_seed(SEED);
            let mut changes = Vec::new();
            let mut events = Vec::new();
            for _ in 0..1000 {
                match vssm.step(&mut state, &mut rng, &mut changes) {
                    Some(e) => events.push((e.site, e.reaction, e.time)),
                    None => break,
                }
            }
            (state.lattice, state.time, events, rng.f64())
        };
        assert_eq!(run(true), run(false), "{name}");
    }
}
