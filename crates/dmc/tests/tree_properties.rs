//! Property-based tests for the propensity tree and tree-VSSM.

use proptest::prelude::*;
use psr_dmc::propensity_tree::PropensityTree;
use psr_rng::rng_from_seed;

proptest! {
    #[test]
    fn total_is_sum_of_weights(
        weights in prop::collection::vec(0.0f64..10.0, 1..60),
    ) {
        let mut tree = PropensityTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            tree.set(i, w);
        }
        let expected: f64 = weights.iter().sum();
        prop_assert!((tree.total() - expected).abs() < 1e-9 * (1.0 + expected));
        prop_assert!(tree.is_consistent());
    }

    #[test]
    fn overwrites_keep_consistency(
        ops in prop::collection::vec((0usize..32, 0.0f64..5.0), 1..200),
    ) {
        let mut tree = PropensityTree::new(32);
        let mut reference = vec![0.0f64; 32];
        for (i, w) in ops {
            tree.set(i, w);
            reference[i] = w;
        }
        let expected: f64 = reference.iter().sum();
        prop_assert!((tree.total() - expected).abs() < 1e-9 * (1.0 + expected));
        for (i, &w) in reference.iter().enumerate() {
            prop_assert_eq!(tree.get(i), w);
        }
        prop_assert!(tree.is_consistent());
    }

    #[test]
    fn sampling_only_returns_positive_weight_slots(
        weights in prop::collection::vec(0.0f64..3.0, 2..40),
        seed in 0u64..1000,
    ) {
        let mut tree = PropensityTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            tree.set(i, w);
        }
        let mut rng = rng_from_seed(seed);
        if tree.total() > 0.0 {
            for _ in 0..50 {
                let slot = tree.sample(&mut rng).expect("non-zero total");
                prop_assert!(slot < weights.len());
                prop_assert!(
                    weights[slot] > 0.0,
                    "sampled zero-weight slot {} (w = {})", slot, weights[slot]
                );
            }
        } else {
            prop_assert_eq!(tree.sample(&mut rng), None);
        }
    }

    #[test]
    fn clearing_all_weights_empties_the_tree(
        weights in prop::collection::vec(0.01f64..3.0, 1..30),
    ) {
        let mut tree = PropensityTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            tree.set(i, w);
        }
        for i in 0..weights.len() {
            tree.set(i, 0.0);
        }
        prop_assert!(tree.total().abs() < 1e-9);
        let mut rng = rng_from_seed(1);
        prop_assert_eq!(tree.sample(&mut rng), None);
    }
}
