//! Master-Equation golden test: the exact ZGB coverages on a 3×3 torus,
//! integrated from the empty surface, are committed as f64 bit patterns and
//! compared bit-for-bit. Any refactor of `master_equation.rs` that changes
//! state enumeration, transition assembly order, or the RK4 arithmetic
//! shows up as a bit difference here — rule-of-thumb tolerances would hide
//! exactly the class of silent drift this fixture exists to catch.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! cargo test -p psr-dmc --test golden_me -- --ignored regenerate
//! ```

use psr_dmc::master_equation::MasterEquation;
use psr_lattice::{Dims, Lattice};
use psr_model::library::zgb::zgb_ziff;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/me_zgb_3x3.golden"
);

/// The quantities pinned by the fixture, in file order.
fn golden_values() -> Vec<(&'static str, f64)> {
    let model = zgb_ziff(0.5, 2.0);
    let lattice = Lattice::filled(Dims::square(3), 0);
    let mut me = MasterEquation::new(&model, &lattice);
    // 40 × 0.025 = 1.0 time units: past the initial transient, cheap enough
    // for a debug-profile test run.
    for _ in 0..40 {
        me.rk4_step(0.025);
    }
    vec![
        ("num_states", me.num_states() as f64),
        ("num_transitions", me.num_transitions() as f64),
        ("coverage_vacant", me.expected_coverage(0)),
        ("coverage_co", me.expected_coverage(1)),
        ("coverage_o", me.expected_coverage(2)),
        ("total_probability", me.total_probability()),
    ]
}

fn render(values: &[(&str, f64)]) -> String {
    let mut out = String::from(
        "# ZGB y=0.5 k_react=2 on a 3x3 torus from the empty surface,\n\
         # 40 RK4 steps of dt=0.025 (t=1.0). f64 bit patterns, little to\n\
         # touch by hand: regenerate via the ignored `regenerate` test.\n",
    );
    for (name, v) in values {
        out.push_str(&format!("{name}={:016x}\n", v.to_bits()));
    }
    out
}

#[test]
fn zgb_3x3_coverages_match_golden_bits() {
    let text = std::fs::read_to_string(FIXTURE)
        .unwrap_or_else(|e| panic!("missing fixture {FIXTURE}: {e}"));
    let mut expected = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, bits) = line.split_once('=').expect("name=hexbits lines");
        let bits = u64::from_str_radix(bits, 16).expect("16 hex digits");
        expected.insert(name.to_string(), bits);
    }
    let computed = golden_values();
    assert_eq!(computed.len(), expected.len(), "fixture entry count");
    for (name, v) in computed {
        let want = *expected
            .get(name)
            .unwrap_or_else(|| panic!("fixture missing {name}"));
        assert_eq!(
            v.to_bits(),
            want,
            "{name}: computed {v:?} ({:016x}), fixture {:?} ({want:016x})",
            v.to_bits(),
            f64::from_bits(want),
        );
    }
}

/// Not a test: rewrites the fixture from the current implementation.
#[test]
#[ignore = "regenerates the golden fixture in place"]
fn regenerate() {
    std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
    std::fs::write(FIXTURE, render(&golden_values())).unwrap();
}
