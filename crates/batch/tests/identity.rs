//! Batch-vs-single bit-identity: slot `r` of a batch seeded `(seed, r)`
//! must match a single-replica run with the same seed exactly — lattice,
//! clock bits, RNG words, trial/executed counts — for every supported
//! algorithm, and independently of batch width.

use proptest::prelude::*;
use psr_batch::engine::NoBatchHook;
use psr_batch::{BatchAlgorithm, BatchSim};
use psr_ca::ndca::SweepOrder;
use psr_ca::pndca::ChunkSelection;
use psr_ca::{five_coloring, Ndca, Pndca};
use psr_dmc::events::NoHook;
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice};
use psr_model::library::kuzovkov::{kuzovkov_model, KuzovkovParams};
use psr_model::library::zgb::zgb_ziff;
use psr_model::Model;
use psr_rng::rng_from_seed;

/// Everything a trajectory comparison needs, bit-exact.
#[derive(Debug, PartialEq)]
struct Snapshot {
    cells: Vec<u8>,
    time_bits: u64,
    rng_words: [u64; 2],
    trials: u64,
    executed: u64,
}

fn single_snapshot(
    model: &Model,
    dims: Dims,
    algorithm: &BatchAlgorithm,
    seed: u64,
    steps: u64,
) -> Snapshot {
    let mut state = SimState::new(Lattice::filled(dims, 0), model);
    let mut rng = rng_from_seed(seed);
    let stats = match algorithm {
        BatchAlgorithm::Ndca { shuffled } => {
            let order = if *shuffled {
                SweepOrder::Shuffled
            } else {
                SweepOrder::RowMajor
            };
            Ndca::new(model).with_order(order).run_steps(
                &mut state,
                &mut rng,
                steps,
                None,
                &mut NoHook,
            )
        }
        BatchAlgorithm::Pndca {
            partition,
            selection,
        } => Pndca::new(model, partition)
            .with_selection(*selection)
            .run_steps(&mut state, &mut rng, steps, None, &mut NoHook),
    };
    Snapshot {
        cells: state.lattice.cells().to_vec(),
        time_bits: state.time.to_bits(),
        rng_words: rng.state(),
        trials: stats.trials,
        executed: stats.executed,
    }
}

fn batch_snapshot(sim: &BatchSim, slot: usize) -> Snapshot {
    Snapshot {
        cells: sim.lattice_of(slot).cells().to_vec(),
        time_bits: sim.time(slot).to_bits(),
        rng_words: sim.rng_words(slot),
        trials: sim.trials(slot),
        executed: sim.executed(slot),
    }
}

fn assert_batch_matches_single(
    model: &Model,
    dims: Dims,
    algorithm: BatchAlgorithm,
    seeds: &[u64],
    steps: u64,
) {
    let mut sim = BatchSim::new(model, dims, algorithm.clone(), seeds);
    sim.run_steps(steps, &mut NoBatchHook);
    for (slot, &seed) in seeds.iter().enumerate() {
        let want = single_snapshot(model, dims, &algorithm, seed, steps);
        let got = batch_snapshot(&sim, slot);
        assert_eq!(
            got, want,
            "slot {slot} (seed {seed}) diverged from the single-replica run"
        );
    }
}

#[test]
fn ndca_rowmajor_zgb_slots_match_single() {
    let model = zgb_ziff(0.5, 10.0);
    let seeds: Vec<u64> = (100..112).collect(); // 12 replicas pad to 16 slots
    assert_batch_matches_single(
        &model,
        Dims::square(10),
        BatchAlgorithm::Ndca { shuffled: false },
        &seeds,
        300,
    );
}

#[test]
fn ndca_shuffled_zgb_slots_match_single() {
    let model = zgb_ziff(0.45, 5.0);
    let seeds: Vec<u64> = (7..16).collect();
    assert_batch_matches_single(
        &model,
        Dims::square(10),
        BatchAlgorithm::Ndca { shuffled: true },
        &seeds,
        200,
    );
}

#[test]
fn pndca_every_selection_matches_single() {
    let model = zgb_ziff(0.52, 10.0);
    let dims = Dims::square(10);
    let partition = five_coloring(dims);
    for selection in [
        ChunkSelection::InOrder,
        ChunkSelection::RandomOrder,
        ChunkSelection::RandomWithReplacement,
        ChunkSelection::WeightedByRates,
    ] {
        let seeds: Vec<u64> = (40..46).collect();
        assert_batch_matches_single(
            &model,
            dims,
            BatchAlgorithm::Pndca {
                partition: partition.clone(),
                selection,
            },
            &seeds,
            150,
        );
    }
}

#[test]
fn kuzovkov_ndca_and_weighted_pndca_match_single() {
    let model = kuzovkov_model(KuzovkovParams::default());
    let dims = Dims::square(10);
    let seeds: Vec<u64> = (900..905).collect();
    assert_batch_matches_single(
        &model,
        dims,
        BatchAlgorithm::Ndca { shuffled: false },
        &seeds,
        100,
    );
    assert_batch_matches_single(
        &model,
        dims,
        BatchAlgorithm::Pndca {
            partition: five_coloring(dims),
            selection: ChunkSelection::WeightedByRates,
        },
        &seeds,
        80,
    );
}

/// Batch width must not change any slot's trajectory: the same seed gives
/// the same snapshot whether it shares the batch with 0, 7, or 31 others.
#[test]
fn batch_width_does_not_change_trajectories() {
    let model = zgb_ziff(0.5, 10.0);
    let dims = Dims::square(10);
    let algorithm = BatchAlgorithm::Ndca { shuffled: false };
    let steps = 250;
    let seed = 1234u64;
    let mut reference = None;
    for width in [1usize, 5, 8, 17, 32] {
        // Place the probed seed at a different slot each time.
        let at = (width - 1) / 2;
        let seeds: Vec<u64> = (0..width as u64)
            .map(|i| if i == at as u64 { seed } else { 5000 + i })
            .collect();
        let mut sim = BatchSim::new(&model, dims, algorithm.clone(), &seeds);
        sim.run_steps(steps, &mut NoBatchHook);
        let snap = batch_snapshot(&sim, at);
        match &reference {
            None => reference = Some(snap),
            Some(want) => assert_eq!(
                &snap, want,
                "width {width} changed the trajectory of seed {seed}"
            ),
        }
    }
}

/// The AVX-512 sweep must be bit-identical to the scalar lockstep path,
/// including frozen-lane handling.
#[test]
fn simd_sweep_matches_scalar_sweep() {
    let model = zgb_ziff(0.5, 10.0);
    let dims = Dims::square(20);
    let seeds: Vec<u64> = (0..16).collect();
    let algorithm = BatchAlgorithm::Ndca { shuffled: false };
    let mut simd = BatchSim::new(&model, dims, algorithm.clone(), &seeds);
    if !simd.simd_active() {
        eprintln!("avx512 not available; simd arm not exercised");
        return;
    }
    let mut scalar = BatchSim::new(&model, dims, algorithm, &seeds);
    scalar.set_simd(false);
    assert!(!scalar.simd_active());
    for sim in [&mut simd, &mut scalar] {
        sim.run_steps(120, &mut NoBatchHook);
        // Freeze a ragged subset mid-run: frozen lanes must hold their
        // clock and RNG words bit-still through masked updates.
        for slot in [0usize, 3, 8, 15] {
            sim.set_active(slot, false);
        }
        sim.run_steps(80, &mut NoBatchHook);
        for slot in [0usize, 3, 8, 15] {
            sim.set_active(slot, true);
        }
        sim.run_steps(40, &mut NoBatchHook);
    }
    for slot in 0..seeds.len() {
        assert_eq!(
            batch_snapshot(&simd, slot),
            batch_snapshot(&scalar, slot),
            "slot {slot} diverged between SIMD and scalar sweeps"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // ≥1000-step identity over (model, side, batch width, replica index).
    #[test]
    fn slot_matches_single_replica(
        kuzovkov in proptest::bool::ANY,
        side_sel in 0u32..2,
        width in 1usize..10,
        slot_frac in 0.0f64..1.0,
        seed in 0u64..1_000_000,
        steps in 1000u64..1300,
    ) {
        let model = if kuzovkov {
            kuzovkov_model(KuzovkovParams::default())
        } else {
            zgb_ziff(0.5, 10.0)
        };
        // Kuzovkov's 52 reaction types make debug-mode trials ~10x dearer;
        // the step floor still holds.
        let steps = if kuzovkov { steps / 4 + 1000 } else { steps };
        let side = [5u32, 10][side_sel as usize];
        let dims = Dims::square(side);
        let slot = ((width as f64 * slot_frac) as usize).min(width - 1);
        let seeds: Vec<u64> = (0..width as u64).map(|i| seed + i).collect();
        let algorithm = BatchAlgorithm::Ndca { shuffled: false };
        let mut sim = BatchSim::new(&model, dims, algorithm.clone(), &seeds);
        sim.run_steps(steps, &mut NoBatchHook);
        let want = single_snapshot(&model, dims, &algorithm, seeds[slot], steps);
        prop_assert_eq!(batch_snapshot(&sim, slot), want);
    }
}
