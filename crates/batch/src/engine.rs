//! The lockstep core: packed SoA replica state over one shared model.
//!
//! Layout. With `G = ceil(replicas / LANES)` lane groups, per-site state is
//! stored site-major: `cells/codes/masks[(site·G + g)·LANES + lane]`. One
//! `(site, group)` row of masks is 64 contiguous bytes — a single register
//! load in the SIMD sweep — and a row-major sweep streams memory
//! sequentially. Per-slot state (`slot = g·LANES + lane`) is slot-major:
//! RNG words, clocks, trial/executed counters, coverage counts.
//!
//! RNG. Each slot carries the state/increment words of the `psr-rng` Pcg32
//! seeded exactly like a single replica (`rng_from_seed(seed_r)`). The hot
//! loop advances the packed words with an inlined copy of the generator
//! (pinned to the real one by a test); cold per-step draws (sweep shuffles,
//! chunk selections) round-trip through a reconstructed [`SimRng`] and the
//! *same library functions* the single-replica algorithms call, so every
//! slot consumes its stream in the identical order.

use std::sync::Arc;

use psr_ca::pndca::ChunkSelection;
use psr_ca::propensity::draw_weighted;
use psr_ca::Partition;
use psr_kernel::CompiledModel;
use psr_lattice::{Dims, Lattice, Offset, Site};
use psr_model::Model;
use psr_rng::sample::shuffle;
use psr_rng::{rng_from_seed, AliasTable, SimRng};

/// Replica lanes per group: one AVX-512 register of 64-bit lanes.
pub const LANES: usize = 8;

/// PCG-XSH-RR 64/32 multiplier (O'Neill, public domain), replicated from
/// `psr-rng` so the lockstep loop can advance packed states without
/// round-tripping through `Pcg32` structs. `pcg_inline_matches_pcg32`
/// pins this replica to the real generator.
pub(crate) const PCG_MULT: u64 = 6364136223846793005;
/// Two-LCG-step multiplier: one 64-bit draw consumes two 32-bit outputs.
pub(crate) const PCG_MULT_SQ: u64 = PCG_MULT.wrapping_mul(PCG_MULT);

/// XSH-RR output permutation of one LCG state word.
#[inline(always)]
pub(crate) fn pcg_permute(state: u64) -> u32 {
    let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
    let rot = (state >> 59) as u32;
    xorshifted.rotate_right(rot)
}

/// One 64-bit draw: two consecutive 32-bit outputs, low word first,
/// advancing the LCG by two steps in one fused update — bit-identical to
/// `Pcg32::next_u64`.
#[inline(always)]
pub(crate) fn pcg_next_u64(state: &mut u64, inc: u64) -> u64 {
    let s0 = *state;
    let s1 = s0.wrapping_mul(PCG_MULT).wrapping_add(inc);
    *state = s0
        .wrapping_mul(PCG_MULT_SQ)
        .wrapping_add(PCG_MULT.wrapping_add(1).wrapping_mul(inc));
    let lo = pcg_permute(s0) as u64;
    let hi = pcg_permute(s1) as u64;
    (hi << 32) | lo
}

/// Alias-table draw on packed RNG words — bit-identical to
/// [`AliasTable::sample`]: low 32 bits pick the bucket (Lemire reduction
/// with exact rejection), the *first* draw's high 32 bits decide accept vs
/// alias even when the bucket is redrawn.
#[inline(always)]
pub(crate) fn alias_sample_raw(entries: &[u64], state: &mut u64, inc: u64) -> usize {
    let n = entries.len() as u64;
    let x = pcg_next_u64(state, inc);
    let accept_bits = x >> 32;
    let mut m = (x & 0xFFFF_FFFF) * n;
    let mut lo = m & 0xFFFF_FFFF;
    if lo < n {
        let t = ((1u64 << 32) - n) % n;
        while lo < t {
            m = (pcg_next_u64(state, inc) & 0xFFFF_FFFF) * n;
            lo = m & 0xFFFF_FFFF;
        }
    }
    let i = (m >> 32) as usize;
    let e = entries[i];
    let a = (e >> 32) as usize;
    let accept = (accept_bits < (e & 0xFFFF_FFFF)) as usize;
    a ^ ((i ^ a) & accept.wrapping_neg())
}

/// Flat index of `(site, group, lane)` in the group-major SoA arrays: one
/// `(group, site)` row is `LANES` contiguous entries (the masks row is one
/// 64-byte register load), and a group's row-major sweep streams memory
/// sequentially.
#[inline(always)]
pub(crate) fn soa_index(site: usize, n_sites: usize, g: usize, lane: usize) -> usize {
    (g * n_sites + site) * LANES + lane
}

/// Rebuild a [`SimRng`] from packed words for cold library draws.
#[inline]
fn unpack_rng(state: u64, inc: u64) -> SimRng {
    SimRng::from_state([state, inc]).expect("packed rng increment is odd by construction")
}

/// Which single-replica algorithm the batch replicates, trial for trial.
#[derive(Clone, Debug)]
pub enum BatchAlgorithm {
    /// [`psr_ca::Ndca`] with discretized time.
    Ndca {
        /// Shuffle the site order each step instead of row-major sweeps.
        shuffled: bool,
    },
    /// [`psr_ca::Pndca`] with discretized time.
    Pndca {
        /// Lattice partition (shared by every replica).
        partition: Partition,
        /// Chunk-selection strategy.
        selection: ChunkSelection,
    },
}

/// Observer of executed events, the batch analogue of
/// [`EventHook`](psr_dmc::events::EventHook).
///
/// Only *executed* trials are reported: for windowed metering (the only
/// hook the ensemble tier uses) failed trials carry no information beyond
/// the clock, and each slot's final clock is available from the sim.
pub trait BatchHook {
    /// An executed reaction in `slot` at post-increment clock `time`.
    fn on_exec(&mut self, slot: usize, time: f64, site: Site, reaction: usize);
}

/// A hook that ignores every event.
pub struct NoBatchHook;

impl BatchHook for NoBatchHook {
    #[inline(always)]
    fn on_exec(&mut self, _slot: usize, _time: f64, _site: Site, _reaction: usize) {}
}

/// Dispatch shape of one batch step, resolved at construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StepKind {
    NdcaRowMajor,
    NdcaShuffled,
    Pndca(ChunkSelection),
}

/// A batch of replicas of one model advancing in lockstep.
///
/// Construction pads the replica count up to a multiple of [`LANES`]; the
/// padding slots simulate normally (re-running the last seeds) but are
/// excluded from [`replicas`](Self::replicas)-indexed reporting.
pub struct BatchSim {
    dims: Dims,
    kind: StepKind,
    pub(crate) n_sites: usize,
    num_states: usize,
    num_cells: usize,
    num_reactions: usize,
    pub(crate) groups: usize,
    replicas: usize,
    /// Time per trial, `1/(N·K)` — the discretized NDCA/PNDCA clock.
    pub(crate) dt: f64,
    // --- shared read-only tables (one copy across all replicas) ---
    /// Packed alias buckets, copied from [`AliasTable::entries`].
    pub(crate) alias_entries: Vec<u64>,
    /// `anchors[site·C + j]` = flat index of `site − cells[j]`.
    anchors: Vec<u32>,
    /// Base-S digit weight of each stencil cell.
    cell_weights: Vec<u32>,
    /// code → enabled-reaction mask.
    pub(crate) lut_mask: Vec<u64>,
    /// Rate constant per reaction (weighted chunk selection).
    rates: Vec<f64>,
    /// Flattened transforms `(offset id, target species)` of all reactions;
    /// offset ids index the deduplicated transform-offset list.
    exec_tf: Vec<(u32, u8)>,
    /// Transform range of each reaction within `exec_tf`.
    exec_range: Vec<(u32, u32)>,
    /// `exec_targets[site·O + oid]` = flat index of `site + offsets[oid]`,
    /// precomputed so `execute` never pays `Dims::translate`'s div/mod.
    exec_targets: Vec<u32>,
    /// Number of distinct transform offsets `O`.
    num_exec_offsets: usize,
    // --- partition tables (PNDCA only) ---
    /// Chunk site lists, concatenated in chunk order.
    chunk_sites: Vec<u32>,
    /// Site range of each chunk within `chunk_sites`.
    chunk_range: Vec<(u32, u32)>,
    /// Chunk index of each site.
    chunk_of: Vec<u32>,
    /// Maintain per-chunk enabled counts (WeightedByRates only).
    weighted: bool,
    // --- per-replica SoA state, site-major ---
    pub(crate) cells: Vec<u8>,
    pub(crate) codes: Vec<u32>,
    pub(crate) masks: Vec<u64>,
    // --- per-slot state ---
    pub(crate) rng_state: Vec<u64>,
    pub(crate) rng_inc: Vec<u64>,
    pub(crate) time: Vec<f64>,
    pub(crate) trials: Vec<u64>,
    pub(crate) executed: Vec<u64>,
    pub(crate) active: Vec<bool>,
    /// `coverage[slot·num_states + s]` = sites of species `s`.
    coverage: Vec<u64>,
    /// `counts[(slot·chunks + c)·R + m]` = chunk-`c` sites with reaction
    /// `m` enabled, maintained exactly like `ChunkPropensityCache`.
    prop_counts: Vec<u32>,
    // --- scratch ---
    orders: Vec<u32>,
    weights_scratch: Vec<f64>,
    chunk_pick: Vec<u32>,
    pub(crate) use_simd: bool,
}

impl BatchSim {
    /// Batch over the all-vacant initial lattice (what
    /// `Simulator::into_session` starts from), one replica per seed.
    pub fn new(model: &Model, dims: Dims, algorithm: BatchAlgorithm, seeds: &[u64]) -> Self {
        Self::with_initial(model, &Lattice::filled(dims, 0), algorithm, seeds)
    }

    /// Batch with an explicit shared initial lattice.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty, the model cannot be LUT-compiled, or a
    /// PNDCA partition does not match `lattice`'s dimensions.
    pub fn with_initial(
        model: &Model,
        lattice: &Lattice,
        algorithm: BatchAlgorithm,
        seeds: &[u64],
    ) -> Self {
        assert!(!seeds.is_empty(), "batch needs at least one replica seed");
        let compiled = CompiledModel::try_compile(model)
            .map(Arc::new)
            .expect("model is not kernel-compilable");
        assert!(
            compiled.has_lut(),
            "batch engine requires the LUT kernel path"
        );
        let dims = lattice.dims();
        let n = lattice.len();
        let c = compiled.cells().len();

        // Neighbor/anchor tables, built exactly like `SiteKernel::new`.
        let mut neighbors = vec![0u32; n * c];
        let mut anchors = vec![0u32; n * c];
        let wrap = lattice.wrap_tables();
        for (j, &offset) in compiled.cells().iter().enumerate() {
            let back = offset.negated();
            if wrap.covers(offset) && wrap.covers(back) {
                let mut site = 0usize;
                for y in 0..dims.height() {
                    for x in 0..dims.width() {
                        neighbors[site * c + j] = wrap.translate_xy(x, y, offset).0;
                        anchors[site * c + j] = wrap.translate_xy(x, y, back).0;
                        site += 1;
                    }
                }
            } else {
                for site in dims.iter_sites() {
                    neighbors[site.0 as usize * c + j] = dims.translate(site, offset).0;
                    anchors[site.0 as usize * c + j] = dims.translate(site, back).0;
                }
            }
        }
        let cell_weights: Vec<u32> = (0..c).map(|j| compiled.weight(j)).collect();
        let lut_mask = compiled
            .lut_masks()
            .expect("has_lut checked above")
            .to_vec();

        let alias = AliasTable::new(&model.rate_weights());
        let num_reactions = model.num_reactions();
        let rates: Vec<f64> = (0..num_reactions)
            .map(|r| model.reaction(r).rate())
            .collect();
        let mut exec_offsets: Vec<Offset> = Vec::new();
        let mut exec_tf = Vec::new();
        let mut exec_range = Vec::with_capacity(num_reactions);
        for r in 0..num_reactions {
            let start = exec_tf.len() as u32;
            for t in model.reaction(r).transforms() {
                let oid = exec_offsets
                    .iter()
                    .position(|&o| o == t.offset)
                    .unwrap_or_else(|| {
                        exec_offsets.push(t.offset);
                        exec_offsets.len() - 1
                    }) as u32;
                exec_tf.push((oid, t.tgt.id()));
            }
            exec_range.push((start, exec_tf.len() as u32));
        }
        // Per-site transform targets, via the same `Dims::translate` that
        // `ReactionType::execute` calls — identical wrapping by definition.
        let num_exec_offsets = exec_offsets.len();
        let mut exec_targets = vec![0u32; n * num_exec_offsets];
        for site in dims.iter_sites() {
            for (oid, &offset) in exec_offsets.iter().enumerate() {
                exec_targets[site.0 as usize * num_exec_offsets + oid] =
                    dims.translate(site, offset).0;
            }
        }

        let (kind, chunk_sites, chunk_range, chunk_of, weighted) = match &algorithm {
            BatchAlgorithm::Ndca { shuffled: false } => (
                StepKind::NdcaRowMajor,
                Vec::new(),
                Vec::new(),
                Vec::new(),
                false,
            ),
            BatchAlgorithm::Ndca { shuffled: true } => (
                StepKind::NdcaShuffled,
                Vec::new(),
                Vec::new(),
                Vec::new(),
                false,
            ),
            BatchAlgorithm::Pndca {
                partition,
                selection,
            } => {
                assert_eq!(partition.dims(), dims, "partition/lattice dims differ");
                let mut sites = Vec::with_capacity(n);
                let mut range = Vec::with_capacity(partition.num_chunks());
                for ci in 0..partition.num_chunks() {
                    let start = sites.len() as u32;
                    sites.extend(partition.chunk(ci).iter().map(|s| s.0));
                    range.push((start, sites.len() as u32));
                }
                let of = (0..n)
                    .map(|s| partition.chunk_of(Site(s as u32)) as u32)
                    .collect();
                let weighted = *selection == ChunkSelection::WeightedByRates;
                (StepKind::Pndca(*selection), sites, range, of, weighted)
            }
        };

        let replicas = seeds.len();
        let groups = replicas.div_ceil(LANES);
        let slots = groups * LANES;
        let num_states = (compiled.num_states() as usize).max(1);

        // Per-site shared seed values: one scan, broadcast to every lane.
        let mut base_codes = vec![0u32; n];
        let mut base_masks = vec![0u64; n];
        let lattice_cells = lattice.cells();
        for site in 0..n {
            let mut code = 0u32;
            for (j, &w) in cell_weights.iter().enumerate() {
                code += w * u32::from(lattice_cells[neighbors[site * c + j] as usize]);
            }
            base_codes[site] = code;
            base_masks[site] = lut_mask[code as usize];
        }
        let mut cells = vec![0u8; n * slots];
        let mut codes = vec![0u32; n * slots];
        let mut masks = vec![0u64; n * slots];
        for g in 0..groups {
            for site in 0..n {
                let row = soa_index(site, n, g, 0);
                cells[row..row + LANES].fill(lattice_cells[site]);
                codes[row..row + LANES].fill(base_codes[site]);
                masks[row..row + LANES].fill(base_masks[site]);
            }
        }

        let mut base_cov = vec![0u64; num_states];
        for &v in lattice_cells {
            base_cov[v as usize] += 1;
        }
        let mut coverage = vec![0u64; slots * num_states];
        for slot in 0..slots {
            coverage[slot * num_states..(slot + 1) * num_states].copy_from_slice(&base_cov);
        }

        let prop_counts = if weighted {
            let chunks = chunk_range.len();
            let mut base = vec![0u32; chunks * num_reactions];
            for site in 0..n {
                let mut bits = base_masks[site];
                let cb = chunk_of[site] as usize * num_reactions;
                while bits != 0 {
                    let m = bits.trailing_zeros() as usize;
                    base[cb + m] += 1;
                    bits &= bits - 1;
                }
            }
            let mut counts = vec![0u32; slots * chunks * num_reactions];
            for slot in 0..slots {
                let at = slot * chunks * num_reactions;
                counts[at..at + chunks * num_reactions].copy_from_slice(&base);
            }
            counts
        } else {
            Vec::new()
        };

        let mut rng_state = vec![0u64; slots];
        let mut rng_inc = vec![0u64; slots];
        for slot in 0..slots {
            // Padding slots re-run the tail seeds; they are simulated but
            // never reported.
            let seed = seeds[slot.min(replicas - 1)];
            let words = rng_from_seed(seed).state();
            rng_state[slot] = words[0];
            rng_inc[slot] = words[1];
        }

        let use_simd = kind == StepKind::NdcaRowMajor && Self::simd_available(alias.len(), groups);

        BatchSim {
            dims,
            kind,
            n_sites: n,
            num_states,
            num_cells: c,
            num_reactions,
            groups,
            replicas,
            dt: 1.0 / (n as f64 * model.total_rate()),
            alias_entries: alias.entries().to_vec(),
            anchors,
            cell_weights,
            lut_mask,
            rates,
            exec_tf,
            exec_range,
            exec_targets,
            num_exec_offsets,
            chunk_sites,
            chunk_range,
            chunk_of,
            weighted,
            cells,
            codes,
            masks,
            rng_state,
            rng_inc,
            time: vec![0.0; slots],
            trials: vec![0; slots],
            executed: vec![0; slots],
            active: vec![true; slots],
            coverage,
            prop_counts,
            orders: Vec::new(),
            weights_scratch: Vec::new(),
            chunk_pick: Vec::new(),
            use_simd,
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn simd_available(alias_len: usize, groups: usize) -> bool {
        alias_len <= LANES
            && groups <= crate::simd::MAX_GROUPS
            && std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn simd_available(_alias_len: usize, _groups: usize) -> bool {
        false
    }

    /// Force the scalar lockstep path even where AVX-512 is available
    /// (benchmark arms and scalar-vs-SIMD equality tests).
    pub fn set_simd(&mut self, enable: bool) {
        self.use_simd = enable
            && self.kind == StepKind::NdcaRowMajor
            && Self::simd_available(self.alias_entries.len(), self.groups);
    }

    /// Whether the SIMD sweep is in use.
    pub fn simd_active(&self) -> bool {
        self.use_simd
    }

    /// Requested replica count (excludes lane padding).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total simulated slots (replicas padded to a multiple of [`LANES`]).
    pub fn slots(&self) -> usize {
        self.groups * LANES
    }

    /// Lattice geometry shared by every replica.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Simulated clock of one slot.
    pub fn time(&self, slot: usize) -> f64 {
        self.time[slot]
    }

    /// Trials taken by one slot.
    pub fn trials(&self, slot: usize) -> u64 {
        self.trials[slot]
    }

    /// Executed events of one slot.
    pub fn executed(&self, slot: usize) -> u64 {
        self.executed[slot]
    }

    /// Packed `[state, inc]` RNG words of one slot.
    pub fn rng_words(&self, slot: usize) -> [u64; 2] {
        [self.rng_state[slot], self.rng_inc[slot]]
    }

    /// Freeze or thaw one slot. Frozen slots take no trials, draw no
    /// randomness, and advance no clock — the lockstep analogue of a
    /// replica whose `run_until` loop has ended.
    pub fn set_active(&mut self, slot: usize, active: bool) {
        self.active[slot] = active;
    }

    /// Whether a slot is currently thawed.
    pub fn is_active(&self, slot: usize) -> bool {
        self.active[slot]
    }

    /// Species fraction in one slot — `Coverage::fraction` semantics.
    pub fn coverage_fraction(&self, slot: usize, species: usize) -> f64 {
        self.coverage[slot * self.num_states + species] as f64 / self.n_sites as f64
    }

    /// Per-species site counts of one slot (allocation-free sampling:
    /// batched observables read these counters, never a histogram buffer).
    pub fn coverage_counts(&self, slot: usize) -> &[u64] {
        &self.coverage[slot * self.num_states..(slot + 1) * self.num_states]
    }

    /// Materialise one slot's lattice (test/diagnostic path).
    pub fn lattice_of(&self, slot: usize) -> Lattice {
        let g = slot / LANES;
        let l = slot % LANES;
        let mut lattice = Lattice::filled(self.dims, 0);
        for site in 0..self.n_sites {
            lattice.set(
                Site(site as u32),
                self.cells[soa_index(site, self.n_sites, g, l)],
            );
        }
        lattice
    }

    /// Advance every active slot by `steps` lockstep CA steps (each step
    /// visits all N sites once per slot, exactly like the single-replica
    /// algorithms).
    pub fn run_steps(&mut self, steps: u64, hook: &mut dyn BatchHook) {
        for _ in 0..steps {
            match self.kind {
                StepKind::NdcaRowMajor => {
                    #[cfg(target_arch = "x86_64")]
                    if self.use_simd {
                        // SAFETY: `use_simd` is only set after runtime
                        // detection of avx512f + avx512dq.
                        unsafe { crate::simd::step_ndca_rowmajor(self, hook) };
                        continue;
                    }
                    self.step_ndca_rowmajor(hook);
                }
                StepKind::NdcaShuffled => self.step_ndca_shuffled(hook),
                StepKind::Pndca(selection) => self.step_pndca(selection, hook),
            }
        }
    }

    /// One row-major NDCA sweep, scalar lockstep.
    fn step_ndca_rowmajor(&mut self, hook: &mut dyn BatchHook) {
        let n = self.n_sites;
        for site in 0..n {
            for g in 0..self.groups {
                for l in 0..LANES {
                    if self.active[g * LANES + l] {
                        self.trial(g, l, site, hook);
                    }
                }
            }
        }
        self.bump_trials(n as u64);
    }

    /// One shuffled-order NDCA sweep: each lane shuffles its own identity
    /// permutation from its own stream, exactly like `SweepOrder::Shuffled`.
    fn step_ndca_shuffled(&mut self, hook: &mut dyn BatchHook) {
        let n = self.n_sites;
        let slots = self.slots();
        if self.orders.len() != slots * n {
            self.orders = vec![0u32; slots * n];
        }
        for slot in 0..slots {
            if !self.active[slot] {
                continue;
            }
            let mut rng = unpack_rng(self.rng_state[slot], self.rng_inc[slot]);
            let order = &mut self.orders[slot * n..(slot + 1) * n];
            for (i, v) in order.iter_mut().enumerate() {
                *v = i as u32;
            }
            shuffle(&mut rng, order);
            self.rng_state[slot] = rng.state()[0];
        }
        for pos in 0..n {
            for g in 0..self.groups {
                for l in 0..LANES {
                    let slot = g * LANES + l;
                    if self.active[slot] {
                        let site = self.orders[slot * n + pos] as usize;
                        self.trial(g, l, site, hook);
                    }
                }
            }
        }
        self.bump_trials(n as u64);
    }

    /// One PNDCA step: `m` chunk sweeps per slot, chunk choice per the
    /// selection strategy, each drawn from the slot's own stream in the
    /// exact order `Pndca::step` draws them.
    fn step_pndca(&mut self, selection: ChunkSelection, hook: &mut dyn BatchHook) {
        let m = self.chunk_range.len();
        let slots = self.slots();
        if selection == ChunkSelection::RandomOrder {
            if self.orders.len() != slots * m {
                self.orders = vec![0u32; slots * m];
            }
            for slot in 0..slots {
                if !self.active[slot] {
                    continue;
                }
                let mut rng = unpack_rng(self.rng_state[slot], self.rng_inc[slot]);
                let order = &mut self.orders[slot * m..(slot + 1) * m];
                for (i, v) in order.iter_mut().enumerate() {
                    *v = i as u32;
                }
                shuffle(&mut rng, order);
                self.rng_state[slot] = rng.state()[0];
            }
        }
        if self.chunk_pick.len() != slots {
            self.chunk_pick = vec![0u32; slots];
        }
        for round in 0..m {
            for slot in 0..slots {
                if !self.active[slot] {
                    continue;
                }
                let chunk = match selection {
                    ChunkSelection::InOrder => round,
                    ChunkSelection::RandomOrder => self.orders[slot * m + round] as usize,
                    ChunkSelection::RandomWithReplacement => {
                        let mut rng = unpack_rng(self.rng_state[slot], self.rng_inc[slot]);
                        let c = rng.index(m);
                        self.rng_state[slot] = rng.state()[0];
                        c
                    }
                    ChunkSelection::WeightedByRates => {
                        self.fill_slot_weights(slot);
                        let mut rng = unpack_rng(self.rng_state[slot], self.rng_inc[slot]);
                        let c = draw_weighted(&mut rng, &self.weights_scratch);
                        self.rng_state[slot] = rng.state()[0];
                        c
                    }
                };
                self.chunk_pick[slot] = chunk as u32;
            }
            let max_len = (0..slots)
                .filter(|&s| self.active[s])
                .map(|s| {
                    let (cs, ce) = self.chunk_range[self.chunk_pick[s] as usize];
                    (ce - cs) as usize
                })
                .max()
                .unwrap_or(0);
            for k in 0..max_len {
                for g in 0..self.groups {
                    for l in 0..LANES {
                        let slot = g * LANES + l;
                        if !self.active[slot] {
                            continue;
                        }
                        let (cs, ce) = self.chunk_range[self.chunk_pick[slot] as usize];
                        if k < (ce - cs) as usize {
                            let site = self.chunk_sites[cs as usize + k] as usize;
                            self.trial(g, l, site, hook);
                        }
                    }
                }
            }
            for slot in 0..slots {
                if self.active[slot] {
                    let (cs, ce) = self.chunk_range[self.chunk_pick[slot] as usize];
                    self.trials[slot] += u64::from(ce - cs);
                }
            }
        }
    }

    /// `w_c = Σ_m counts[c,m]·k_m` per chunk, in the accumulation order of
    /// `ChunkPropensityCache::weights_into` (bit-identical totals).
    fn fill_slot_weights(&mut self, slot: usize) {
        let members = self.num_reactions;
        let chunks = self.chunk_range.len();
        let mut out = std::mem::take(&mut self.weights_scratch);
        out.clear();
        let base = slot * chunks * members;
        for chunk in 0..chunks {
            let cb = base + chunk * members;
            let mut w = 0.0;
            for (m, &rate) in self.rates.iter().enumerate() {
                w += f64::from(self.prop_counts[cb + m]) * rate;
            }
            out.push(w);
        }
        self.weights_scratch = out;
    }

    /// One trial of one slot at `site`: sample → mask test → (execute) →
    /// clock tick → hook, replicating the single-replica trial exactly.
    #[inline(always)]
    pub(crate) fn trial(&mut self, g: usize, l: usize, site: usize, hook: &mut dyn BatchHook) {
        let slot = g * LANES + l;
        let inc = self.rng_inc[slot];
        let mut st = self.rng_state[slot];
        let reaction = alias_sample_raw(&self.alias_entries, &mut st, inc);
        self.rng_state[slot] = st;
        // The enabled check consumes no randomness (same invariant the
        // compiled single-replica kernel relies on).
        let enabled = (self.masks[soa_index(site, self.n_sites, g, l)] >> reaction) & 1 != 0;
        if enabled {
            self.execute(g, l, site, reaction);
        }
        let t = self.time[slot] + self.dt;
        self.time[slot] = t;
        if enabled {
            self.executed[slot] += 1;
            hook.on_exec(slot, t, Site(site as u32), reaction);
        }
    }

    /// Apply one executed reaction in one slot: transforms in declaration
    /// order, each folding its coverage transition and kernel update as it
    /// lands. The single-replica path journals first and folds after
    /// (`ReactionType::execute` → `SimState::apply_changes` →
    /// `SiteKernel::apply_changes` →
    /// `ChunkPropensityCache::apply_changes_with_kernel`), but the folds
    /// are commuting increments keyed only on each change's `(old, new)`
    /// pair, so fusing them per transform is bit-identical — and skips the
    /// journal allocation and a second pass over the stencil.
    pub(crate) fn execute(&mut self, g: usize, l: usize, site: usize, reaction: usize) {
        let ns = self.n_sites;
        let c = self.num_cells;
        let slot = g * LANES + l;
        let lane = g * ns * LANES + l;
        let cov = slot * self.num_states;
        let members = self.num_reactions;
        let tgt_row = site * self.num_exec_offsets;
        let (start, end) = self.exec_range[reaction];
        for k in start as usize..end as usize {
            let (oid, new) = self.exec_tf[k];
            let target = self.exec_targets[tgt_row + oid as usize] as usize;
            let idx = lane + target * LANES;
            let old = self.cells[idx];
            self.cells[idx] = new;
            if old == new {
                continue;
            }
            self.coverage[cov + old as usize] -= 1;
            self.coverage[cov + new as usize] += 1;
            let nb = target * c;
            for j in 0..c {
                let anchor = self.anchors[nb + j] as usize;
                let w = self.cell_weights[j];
                let delta = w
                    .wrapping_mul(u32::from(new))
                    .wrapping_sub(w.wrapping_mul(u32::from(old)));
                let aidx = lane + anchor * LANES;
                let code = self.codes[aidx].wrapping_add(delta);
                self.codes[aidx] = code;
                let new_mask = self.lut_mask[code as usize];
                let old_mask = self.masks[aidx];
                self.masks[aidx] = new_mask;
                // Mask-diff deltas telescope across the transforms to
                // exactly the final-vs-initial refresh the single-replica
                // cache performs after the kernel settles.
                if self.weighted && old_mask != new_mask {
                    let pc =
                        (slot * self.chunk_range.len() + self.chunk_of[anchor] as usize) * members;
                    let mut diff = old_mask ^ new_mask;
                    while diff != 0 {
                        let m = diff.trailing_zeros() as usize;
                        if (new_mask >> m) & 1 != 0 {
                            self.prop_counts[pc + m] += 1;
                        } else {
                            self.prop_counts[pc + m] -= 1;
                        }
                        diff &= diff - 1;
                    }
                }
            }
        }
    }

    /// Credit one sweep's trials to every active slot (NDCA counts trials
    /// per sweep, not per trial; the totals are identical).
    pub(crate) fn bump_trials(&mut self, per_slot: u64) {
        for slot in 0..self.slots() {
            if self.active[slot] {
                self.trials[slot] += per_slot;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcg_inline_matches_pcg32() {
        use rand::RngCore;
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let mut reference = rng_from_seed(seed);
            let words = reference.state();
            let mut state = words[0];
            let inc = words[1];
            for _ in 0..64 {
                assert_eq!(pcg_next_u64(&mut state, inc), reference.next_u64());
            }
            assert_eq!(state, reference.state()[0]);
        }
    }

    #[test]
    fn alias_inline_matches_alias_table() {
        for weights in [
            vec![1.0, 2.0, 7.0],
            vec![0.5; 7],
            vec![1.0],
            (1..=52).map(f64::from).collect::<Vec<_>>(),
        ] {
            let table = AliasTable::new(&weights);
            let mut reference = rng_from_seed(9);
            let words = reference.state();
            let mut state = words[0];
            let inc = words[1];
            for _ in 0..4096 {
                let want = table.sample(&mut reference);
                let got = alias_sample_raw(table.entries(), &mut state, inc);
                assert_eq!(got, want);
                assert_eq!(state, reference.state()[0]);
            }
        }
    }
}
