//! Ensemble driving: lockstep `run_until` loops and batched observables.
//!
//! [`run_lockstep`] replicates, per slot, the block loop every production
//! replica runs (`while time < t_end { run_blocks(block); sample }`):
//! each iteration advances every unfinished slot by `block` steps, then
//! samples it; a slot whose clock has passed `t_end` freezes while its
//! batch-mates finish. Because slot streams are independent, the frozen
//! lanes change nothing for the others — the trajectory of slot `r` is a
//! pure function of `seeds[r]`, not of the batch width.
//!
//! [`BatchRateMeter`] is the batched [`RateMeter`](psr_dmc::rate_meter::
//! RateMeter): executed events bucket into fixed windows per slot, and the
//! completed-window count is recovered from the slot's final clock — the
//! single-replica meter rolls windows on every trial, and the last trial's
//! clock *is* the final clock, so the two agree exactly.

use crate::engine::{BatchAlgorithm, BatchHook, BatchSim, LANES};
use psr_lattice::{Dims, Site};
use psr_model::Model;
use psr_stats::TimeSeries;

/// Executed-event windowing for every slot of a batch, producing the same
/// rate series as a per-replica `RateMeter` with one tracked group.
pub struct BatchRateMeter {
    window: f64,
    num_sites: f64,
    /// Reaction index → tracked (single group, like the ZGB CO₂ group).
    tracked: Vec<bool>,
    /// Per slot: executed-event count per window index, grown on demand.
    counts: Vec<Vec<u64>>,
}

impl BatchRateMeter {
    /// Track one `group` of reaction indices over `window`-sized time
    /// windows on a lattice of `num_sites` sites, for `slots` replicas.
    pub fn new(
        num_reactions: usize,
        num_sites: usize,
        window: f64,
        group: &[usize],
        slots: usize,
    ) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive"
        );
        assert!(num_sites > 0, "need at least one site");
        let mut tracked = vec![false; num_reactions];
        for &ri in group {
            tracked[ri] = true;
        }
        BatchRateMeter {
            window,
            num_sites: num_sites as f64,
            tracked,
            counts: vec![Vec::new(); slots],
        }
    }

    /// Rate series of one slot: events / site / time per completed window,
    /// timestamped at the window centre — `RateMeter::rate_series`
    /// semantics, with completed windows derived from the slot's final
    /// clock `final_time`.
    pub fn rate_series(&self, slot: usize, final_time: f64) -> TimeSeries {
        let completed = (final_time / self.window) as u64;
        let mut series = TimeSeries::new();
        for w in 0..completed {
            let count = self.counts[slot].get(w as usize).copied().unwrap_or(0);
            let t = (w as f64 + 0.5) * self.window;
            series.push(t, count as f64 / (self.num_sites * self.window));
        }
        series
    }
}

impl BatchHook for BatchRateMeter {
    #[inline]
    fn on_exec(&mut self, slot: usize, time: f64, _site: Site, reaction: usize) {
        if self.tracked[reaction] {
            let w = (time / self.window) as usize;
            let counts = &mut self.counts[slot];
            if counts.len() <= w {
                counts.resize(w + 1, 0);
            }
            counts[w] += 1;
        }
    }
}

/// Advance a fresh batch to `t_end` in `block`-step strides, calling
/// `sample(&sim, slot)` after each stride for every slot that was still
/// running, and return the finished sim for observable extraction.
#[allow(clippy::too_many_arguments)]
pub fn run_lockstep(
    model: &Model,
    dims: Dims,
    algorithm: BatchAlgorithm,
    seeds: &[u64],
    block: u64,
    t_end: f64,
    hook: &mut dyn BatchHook,
    mut sample: impl FnMut(&BatchSim, usize),
) -> BatchSim {
    let mut sim = BatchSim::new(model, dims, algorithm, seeds);
    let slots = sim.slots();
    loop {
        let mut any = false;
        for slot in 0..slots {
            let running = sim.time(slot) < t_end;
            sim.set_active(slot, running);
            any |= running;
        }
        if !any {
            break;
        }
        sim.run_steps(block, hook);
        for slot in 0..slots {
            // The flags set before the stride mark exactly the slots that
            // ran it — those are the ones a single-replica loop samples.
            if sim.is_active(slot) {
                sample(&sim, slot);
            }
        }
    }
    sim
}

/// Drop-in replacement for looping `run_replicas` over a block-driven
/// replica function: replica `i` of `count` is seeded `base_seed + i`,
/// exactly like the sequential-ensemble batches in the validate tier.
pub struct BatchEnsemble<'m> {
    model: &'m Model,
    dims: Dims,
    algorithm: BatchAlgorithm,
    /// Steps per sampling stride.
    pub block: u64,
    /// End of simulated time per replica.
    pub t_end: f64,
}

impl<'m> BatchEnsemble<'m> {
    /// Ensemble of `model` replicas on `dims` under `algorithm`.
    pub fn new(
        model: &'m Model,
        dims: Dims,
        algorithm: BatchAlgorithm,
        block: u64,
        t_end: f64,
    ) -> Self {
        BatchEnsemble {
            model,
            dims,
            algorithm,
            block,
            t_end,
        }
    }

    /// Run `count` replicas seeded `base_seed..base_seed + count` to
    /// `t_end`, sampling every stride, and map each *requested* slot (the
    /// lane padding is skipped) through `finish`.
    pub fn run<T>(
        &self,
        count: u64,
        base_seed: u64,
        hook: &mut dyn BatchHook,
        sample: impl FnMut(&BatchSim, usize),
        mut finish: impl FnMut(&BatchSim, usize) -> T,
    ) -> Vec<T> {
        let seeds: Vec<u64> = (0..count).map(|i| base_seed + i).collect();
        let sim = run_lockstep(
            self.model,
            self.dims,
            self.algorithm.clone(),
            &seeds,
            self.block,
            self.t_end,
            hook,
            sample,
        );
        (0..count as usize).map(|slot| finish(&sim, slot)).collect()
    }

    /// Slot count a `count`-replica batch simulates (padding included) —
    /// what a [`BatchRateMeter`] must be sized for.
    pub fn slots_for(count: u64) -> usize {
        (count as usize).div_ceil(LANES) * LANES
    }
}
