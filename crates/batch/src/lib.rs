//! Batched many-replica lockstep engine (the paper's "third way" to
//! parallelism, in-process).
//!
//! Replica ensembles — dozens of small independent runs of one model — are
//! how the validate statistical tier estimates coverages and turnover
//! frequencies. Run one at a time, each replica re-derives everything the
//! others already computed: the compiled LUT, the alias table, the neighbor
//! tables, and (worst) a serially dependent RNG→sample→mask chain whose
//! latency the CPU cannot hide because there is only one chain.
//!
//! This crate steps `LANES`-wide groups of replicas in lockstep over a
//! structure-of-arrays state:
//!
//! - **Shared, read-only:** one [`CompiledModel`](psr_kernel::CompiledModel)
//!   worth of tables — neighbor/anchor indices, the code→mask LUT, the
//!   packed alias table — serves every replica.
//! - **Per-replica, packed:** lattice cells, neighborhood codes, enabled
//!   masks, one Pcg32 stream, a clock, and coverage counters live in flat
//!   arrays indexed `(group · n_sites + site) · LANES + lane`, so one
//!   site's eight masks are one cache line (and one AVX-512 register).
//!
//! The per-trial recurrence of every replica is independent of its
//! neighbors in the batch, so interleaving eight of them turns the serial
//! latency chain into throughput — and on AVX-512 hardware the whole
//! trial (PCG advance, alias sample, mask test, clock tick) runs eight
//! replicas per instruction sequence ([`simd`]).
//!
//! **Correctness bar:** slot `r` of a batch seeded `(seed, r)` is
//! bit-identical — lattice, clock bits, RNG state, observables — to a
//! single-replica run with the same seed. The engine replicates the exact
//! RNG consumption order of [`Ndca`](psr_ca::Ndca) and
//! [`Pndca`](psr_ca::Pndca) (discretized time), which the `identity` test
//! suite and `bench_replica` pin down.

#![warn(missing_docs)]

pub mod engine;
pub mod ensemble;
#[cfg(target_arch = "x86_64")]
pub mod simd;

pub use engine::{BatchAlgorithm, BatchHook, BatchSim, NoBatchHook, LANES};
pub use ensemble::{run_lockstep, BatchEnsemble, BatchRateMeter};
