//! AVX-512 lockstep sweep: eight replicas per instruction stream.
//!
//! The single-replica NDCA trial is a serially dependent chain —
//! PCG advance → alias sample → mask load → branch — that leaves most of
//! the core idle. Packing eight replicas into the 64-bit lanes of one zmm
//! register turns that latency chain into throughput: one
//! `vpmullq`/`vpaddq` pair advances eight generators, one `vpermq` serves
//! eight alias-table loads from a register-resident table (which is why
//! this path requires `alias.len() <= LANES`), and one 64-byte load
//! fetches eight enabled masks (the site-row layout of
//! [`BatchSim`](crate::BatchSim)).
//!
//! Bit-exactness notes:
//!
//! - The XSH-RR permutation is computed on whole qwords; only the low
//!   dword of each lane is meaningful afterwards. `vprorvd` rotates the
//!   garbage high dword too — harmless, because the bucket product uses
//!   `vpmuludq` (reads low dwords only) and the accept compare masks the
//!   qword to 32 bits first.
//! - Lemire short-interval rejection (`lo < n`, probability ~`n/2^32`) is
//!   detected with one compare+`kortest` and patched on a scalar side
//!   path that replays the exact redraw loop of `AliasTable::sample`.
//! - Frozen lanes (`active == false`) keep their RNG words and clocks via
//!   masked updates — they draw nothing, exactly like a finished replica.
//!
//! Executed trials (a few percent) exit to the same scalar
//! [`execute`](crate::BatchSim::execute) the scalar path uses.

use std::arch::x86_64::*;

use crate::engine::{pcg_next_u64, soa_index, BatchHook, BatchSim, LANES, PCG_MULT, PCG_MULT_SQ};
use psr_lattice::Site;

/// Lane groups the register-array sweep supports (64 replicas). Wider
/// batches fall back to the scalar lockstep path.
pub const MAX_GROUPS: usize = 8;

/// XSH-RR output permutation of eight packed LCG states; low dword of each
/// lane holds the 32-bit output, high dword is garbage (see module docs).
#[inline(always)]
unsafe fn permute8(s: __m512i) -> __m512i {
    let x = _mm512_xor_si512(_mm512_srli_epi64(s, 18), s);
    let x = _mm512_srli_epi64(x, 27);
    let rot = _mm512_srli_epi64(s, 59);
    _mm512_rorv_epi32(x, rot)
}

/// One row-major NDCA sweep over all sites for every lane group.
///
/// The loop is site-outer, group-inner: each group's generator chain is
/// serially dependent site to site (`vpmullq` latency ~15 cycles on
/// Skylake-X-class cores), so sweeping one group at a time is latency
/// bound. Interleaving all groups at each site keeps up to
/// [`MAX_GROUPS`] independent chains in flight, which pushes the sweep
/// toward the multiplier's throughput instead. Group state lives in small
/// stack arrays between sites — L1-resident, off the critical path, and
/// (unlike register residency) not spilled around the scalar `execute`
/// call.
///
/// # Safety
///
/// Requires runtime-detected `avx512f` and `avx512dq`, and a sim built
/// with `alias.len() <= LANES` and `groups <= MAX_GROUPS` (enforced by
/// `BatchSim::simd_available`).
#[target_feature(enable = "avx512f", enable = "avx512dq")]
pub unsafe fn step_ndca_rowmajor(sim: &mut BatchSim, hook: &mut dyn BatchHook) {
    let n = sim.n_sites;
    let groups = sim.groups;
    let n_react = sim.alias_entries.len() as u64;

    // Register-resident alias table: bucket indices are < n_react <= 8, so
    // the padding entries are never selected.
    let mut table = [sim.alias_entries[0]; LANES];
    table[..sim.alias_entries.len()].copy_from_slice(&sim.alias_entries);
    let ventries = _mm512_loadu_si512(table.as_ptr() as *const __m512i);
    let vn = _mm512_set1_epi64(n_react as i64);
    let vlow32 = _mm512_set1_epi64(0xFFFF_FFFF);
    let vone = _mm512_set1_epi64(1);
    let vmul = _mm512_set1_epi64(PCG_MULT as i64);
    let vmul_sq = _mm512_set1_epi64(PCG_MULT_SQ as i64);
    let vdt = _mm512_set1_pd(sim.dt);

    // Per-group sweep state: active masks, generator states, increments
    // and their fused two-step constant `(M+1)·inc`, and the clocks.
    let mut acts = [0u8; MAX_GROUPS];
    let mut sts = [_mm512_setzero_si512(); MAX_GROUPS];
    let mut incs = [_mm512_setzero_si512(); MAX_GROUPS];
    let mut inc2s = [_mm512_setzero_si512(); MAX_GROUPS];
    let mut tms = [_mm512_setzero_pd(); MAX_GROUPS];
    let mut any: u8 = 0;
    for g in 0..groups {
        let base_slot = g * LANES;
        for l in 0..LANES {
            acts[g] |= u8::from(sim.active[base_slot + l]) << l;
        }
        any |= acts[g];
        sts[g] = _mm512_loadu_si512(sim.rng_state[base_slot..].as_ptr() as *const __m512i);
        incs[g] = _mm512_loadu_si512(sim.rng_inc[base_slot..].as_ptr() as *const __m512i);
        let mut w = [0u64; LANES];
        for (l, wl) in w.iter_mut().enumerate() {
            *wl = PCG_MULT
                .wrapping_add(1)
                .wrapping_mul(sim.rng_inc[base_slot + l]);
        }
        inc2s[g] = _mm512_loadu_si512(w.as_ptr() as *const __m512i);
        tms[g] = _mm512_loadu_pd(sim.time[base_slot..].as_ptr());
    }
    if any == 0 {
        return;
    }
    assert!(groups <= MAX_GROUPS);
    assert!(sim.masks.len() >= groups * n * LANES);

    // The hot loop reads `masks` through a raw pointer so the optimizer
    // does not re-load `sim`'s field pointers (and re-check slice bounds)
    // every iteration to account for the cold `execute`/hook calls. The
    // buffer is never reallocated — `execute` only writes elements — but
    // the pointer is still re-derived after every `execute` so no stale
    // provenance crosses a `&mut sim` use.
    let mut masks_ptr = sim.masks.as_ptr();

    for site in 0..n {
        for g in 0..groups {
            let k_act = *acts.get_unchecked(g);
            if k_act == 0 {
                continue;
            }
            // PCG advance: s1 = s0·M + inc (second 32-bit output), next
            // state = s0·M² + (M+1)·inc — both outputs of one 64-bit draw.
            let s0 = *sts.get_unchecked(g);
            let s1 = _mm512_add_epi64(_mm512_mullo_epi64(s0, vmul), *incs.get_unchecked(g));
            let s2 = _mm512_add_epi64(_mm512_mullo_epi64(s0, vmul_sq), *inc2s.get_unchecked(g));
            let mut st = if k_act == 0xFF {
                s2
            } else {
                _mm512_mask_blend_epi64(k_act, s0, s2)
            };
            let lo_out = permute8(s0);
            let accept_bits = _mm512_and_epi64(permute8(s1), vlow32);
            // Lemire bucket: m = lo32 · n, bucket = m >> 32. The explicit
            // mask keeps the lowering on one `vpmuludq` (the garbage high
            // dwords of `lo_out` otherwise force a full 64-bit multiply).
            let mut m = _mm512_mul_epu32(_mm512_and_epi64(lo_out, vlow32), vn);
            let k_rej = _mm512_mask_cmplt_epu64_mask(k_act, _mm512_and_epi64(m, vlow32), vn);
            if k_rej != 0 {
                // Short interval (~n/2³² per lane): replay the exact
                // scalar redraw loop for the flagged lanes.
                let base_slot = g * LANES;
                let mut stw = [0u64; LANES];
                let mut ms = [0u64; LANES];
                _mm512_storeu_si512(stw.as_mut_ptr() as *mut __m512i, st);
                _mm512_storeu_si512(ms.as_mut_ptr() as *mut __m512i, m);
                let mut k = k_rej;
                while k != 0 {
                    let l = k.trailing_zeros() as usize;
                    k &= k - 1;
                    let inc = sim.rng_inc[base_slot + l];
                    let t = ((1u64 << 32) - n_react) % n_react;
                    let mut mm = ms[l];
                    let mut lo = mm & 0xFFFF_FFFF;
                    while lo < t {
                        mm = (pcg_next_u64(&mut stw[l], inc) & 0xFFFF_FFFF) * n_react;
                        lo = mm & 0xFFFF_FFFF;
                    }
                    ms[l] = mm;
                }
                st = _mm512_loadu_si512(stw.as_ptr() as *const __m512i);
                m = _mm512_loadu_si512(ms.as_ptr() as *const __m512i);
            }
            *sts.get_unchecked_mut(g) = st;
            let bucket = _mm512_srli_epi64(m, 32);
            // Packed table lookup + branchless accept-vs-alias.
            let e = _mm512_permutexvar_epi64(bucket, ventries);
            let alias = _mm512_srli_epi64(e, 32);
            let threshold = _mm512_and_epi64(e, vlow32);
            let k_acc = _mm512_cmplt_epu64_mask(accept_bits, threshold);
            let reaction = _mm512_mask_blend_epi64(k_acc, alias, bucket);
            // Eight enabled masks in one 64-byte row load.
            let row = soa_index(site, n, g, 0);
            let mvec = _mm512_loadu_si512(masks_ptr.add(row) as *const __m512i);
            let k_en = _mm512_mask_test_epi64_mask(k_act, _mm512_srlv_epi64(mvec, reaction), vone);
            let tm = _mm512_mask_add_pd(*tms.get_unchecked(g), k_act, *tms.get_unchecked(g), vdt);
            *tms.get_unchecked_mut(g) = tm;
            if k_en != 0 {
                let base_slot = g * LANES;
                let mut rs = [0u64; LANES];
                let mut ts = [0f64; LANES];
                _mm512_storeu_si512(rs.as_mut_ptr() as *mut __m512i, reaction);
                _mm512_storeu_pd(ts.as_mut_ptr(), tm);
                let mut k = k_en;
                while k != 0 {
                    let l = k.trailing_zeros() as usize;
                    k &= k - 1;
                    let slot = base_slot + l;
                    sim.execute(g, l, site, rs[l] as usize);
                    sim.executed[slot] += 1;
                    hook.on_exec(slot, ts[l], Site(site as u32), rs[l] as usize);
                }
                masks_ptr = sim.masks.as_ptr();
            }
        }
    }
    for g in 0..groups {
        if acts[g] == 0 {
            continue;
        }
        let base_slot = g * LANES;
        _mm512_storeu_si512(
            sim.rng_state[base_slot..].as_mut_ptr() as *mut __m512i,
            sts[g],
        );
        _mm512_storeu_pd(sim.time[base_slot..].as_mut_ptr(), tms[g]);
    }
    sim.bump_trials(n as u64);
}
