//! The unified simulator builder.

use crate::output::SimOutput;
use psr_ca::lpndca::{ChunkVisit, LPndca};
use psr_ca::ndca::{Ndca, SweepOrder};
use psr_ca::partition::Partition;
use psr_ca::partition_builder::{
    checkerboard, five_coloring, greedy_coloring, single_chunk, singleton_chunks,
};
use psr_ca::pndca::{ChunkSelection, Pndca};
use psr_ca::splitting::{FractionalStepKmc, Schedule, SplitPlan};
use psr_ca::tpndca::{axis_type_partition, TPndca};
use psr_dmc::events::NoHook;
use psr_dmc::frm::Frm;
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::{Rsm, RunStats, TimeMode};
use psr_dmc::sim::SimState;
use psr_dmc::vssm::Vssm;
use psr_lattice::{Dims, Lattice};
use psr_model::Model;
use psr_parallel::executor::ParallelPndca;
use psr_rng::rng_from_seed;

/// How the lattice is partitioned for the partitioned algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionSpec {
    /// The optimal 5-chunk von Neumann partition (Fig 4); dimensions must
    /// be divisible by 5.
    FiveColoring,
    /// Greedy conflict-graph coloring (works for any model/size).
    Greedy,
    /// The 2-chunk checkerboard (only valid per-reaction; for `TPndca`).
    Checkerboard,
    /// One chunk holding the whole lattice (`m = 1`).
    SingleChunk,
    /// One chunk per site (`m = N`).
    Singletons,
}

impl std::fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PartitionSpec::FiveColoring => "five",
            PartitionSpec::Greedy => "greedy",
            PartitionSpec::Checkerboard => "checkerboard",
            PartitionSpec::SingleChunk => "single",
            PartitionSpec::Singletons => "singletons",
        })
    }
}

impl std::str::FromStr for PartitionSpec {
    type Err = String;

    /// Parse the names printed by `Display` (batch spec files).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "five" => Ok(PartitionSpec::FiveColoring),
            "greedy" => Ok(PartitionSpec::Greedy),
            "checkerboard" => Ok(PartitionSpec::Checkerboard),
            "single" => Ok(PartitionSpec::SingleChunk),
            "singletons" => Ok(PartitionSpec::Singletons),
            other => Err(format!(
                "unknown partition {other:?} (expected five, greedy, checkerboard, single \
                 or singletons)"
            )),
        }
    }
}

impl PartitionSpec {
    /// Materialise the partition.
    pub fn build(&self, dims: Dims, model: &Model) -> Partition {
        match self {
            PartitionSpec::FiveColoring => five_coloring(dims),
            PartitionSpec::Greedy => greedy_coloring(dims, model),
            PartitionSpec::Checkerboard => checkerboard(dims),
            PartitionSpec::SingleChunk => single_chunk(dims),
            PartitionSpec::Singletons => singleton_chunks(dims),
        }
    }
}

/// The simulation algorithm to run.
#[derive(Clone, Debug, PartialEq)]
pub enum Algorithm {
    /// Random Selection Method (paper §3) with stochastic time.
    Rsm,
    /// RSM with the discretised `1/(N·K)` clock.
    RsmDiscretized,
    /// Variable Step Size Method (Gillespie direct).
    Vssm,
    /// VSSM over a segment-tree propensity index (O(log) selection).
    VssmTree,
    /// First Reaction Method.
    Frm,
    /// Non-deterministic CA (paper §4).
    Ndca {
        /// Shuffle the site order each step instead of row-major sweeps.
        shuffled: bool,
    },
    /// Partitioned NDCA (paper §5).
    Pndca {
        /// Lattice partition.
        partition: PartitionSpec,
        /// Chunk-selection strategy.
        selection: ChunkSelection,
    },
    /// L-PNDCA (paper §5) with trial budget `l` per chunk visit.
    LPndca {
        /// Lattice partition.
        partition: PartitionSpec,
        /// Trial budget per chunk visit.
        l: usize,
        /// Chunk-visit mode.
        visit: ChunkVisit,
    },
    /// Type-partitioned NDCA over Ω×T (paper §5, Table II).
    TPndca,
    /// Threaded PNDCA over a conflict-free partition.
    Parallel {
        /// Lattice partition.
        partition: PartitionSpec,
        /// Worker threads.
        threads: usize,
    },
    /// Fractional-step operator-splitting KMC (Lie/Strang): exact VSSM
    /// within `gx × gy` blocks for a window `Δt`, groups interleaved per
    /// the schedule. One step = one whole window.
    Fskmc {
        /// Block grid columns (must divide the lattice width).
        gx: u32,
        /// Block grid rows (must divide the lattice height).
        gy: u32,
        /// Lie (first-order) or Strang (second-order) group schedule.
        schedule: Schedule,
        /// Time window Δt per splitting sweep.
        window: f64,
    },
}

/// Builder/runner around a model.
#[derive(Clone, Debug)]
pub struct Simulator {
    model: Model,
    dims: Dims,
    seed: u64,
    algorithm: Algorithm,
    sample_dt: f64,
    initial: Option<Lattice>,
}

impl Simulator {
    /// A simulator for `model` with defaults: 100×100 lattice, seed 0, RSM,
    /// sampling every 1.0 time units, empty initial surface.
    pub fn new(model: Model) -> Self {
        Simulator {
            model,
            dims: Dims::square(100),
            seed: 0,
            algorithm: Algorithm::Rsm,
            sample_dt: 1.0,
            initial: None,
        }
    }

    /// Set the lattice dimensions.
    pub fn dims(mut self, dims: Dims) -> Self {
        self.dims = dims;
        self
    }

    /// Set the RNG master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Set the coverage sampling interval.
    pub fn sample_dt(mut self, dt: f64) -> Self {
        self.sample_dt = dt;
        self
    }

    /// Start from an explicit initial configuration instead of the empty
    /// surface.
    pub fn initial_lattice(mut self, lattice: Lattice) -> Self {
        self.initial = Some(lattice);
        self
    }

    /// The model being simulated.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Convert the configuration into a step-wise, checkpointable
    /// [`SimSession`](crate::session::SimSession).
    ///
    /// # Errors
    ///
    /// Rejects algorithms that cannot be checkpointed step-wise (VSSM, FRM
    /// and the threaded executor).
    pub fn into_session(self) -> Result<crate::session::SimSession, String> {
        crate::session::SimSession::from_parts(
            self.model,
            self.dims,
            self.seed,
            self.algorithm,
            self.initial,
        )
    }

    fn initial_state(&self) -> SimState {
        let lattice = self
            .initial
            .clone()
            .unwrap_or_else(|| Lattice::filled(self.dims, 0));
        assert_eq!(
            lattice.dims(),
            self.dims,
            "initial lattice dimensions disagree with the configured dims"
        );
        SimState::new(lattice, &self.model)
    }

    /// Run until simulated time `t_end`; returns coverage series and stats.
    pub fn run_until(&self, t_end: f64) -> SimOutput {
        let mut state = self.initial_state();
        let mut rng = rng_from_seed(self.seed);
        let mut recorder = Recorder::new(self.model.species().len(), self.sample_dt);
        let stats: RunStats = match &self.algorithm {
            Algorithm::Rsm => Rsm::new(&self.model).run_until(
                &mut state,
                &mut rng,
                t_end,
                Some(&mut recorder),
                &mut NoHook,
            ),
            Algorithm::RsmDiscretized => Rsm::new(&self.model)
                .with_time_mode(TimeMode::Discretized)
                .run_until(
                    &mut state,
                    &mut rng,
                    t_end,
                    Some(&mut recorder),
                    &mut NoHook,
                ),
            Algorithm::Vssm => {
                let mut vssm = Vssm::new(&self.model, &state.lattice);
                vssm.run_until(
                    &mut state,
                    &mut rng,
                    t_end,
                    Some(&mut recorder),
                    &mut NoHook,
                )
            }
            Algorithm::VssmTree => {
                let mut vssm = psr_dmc::VssmTree::new(&self.model, &state.lattice);
                vssm.run_until(
                    &mut state,
                    &mut rng,
                    t_end,
                    Some(&mut recorder),
                    &mut NoHook,
                )
            }
            Algorithm::Frm => {
                let mut frm = Frm::new(&self.model, &state.lattice, 0.0, &mut rng);
                frm.run_until(
                    &mut state,
                    &mut rng,
                    t_end,
                    Some(&mut recorder),
                    &mut NoHook,
                )
            }
            Algorithm::Ndca { shuffled } => {
                let order = if *shuffled {
                    SweepOrder::Shuffled
                } else {
                    SweepOrder::RowMajor
                };
                Ndca::new(&self.model).with_order(order).run_until(
                    &mut state,
                    &mut rng,
                    t_end,
                    Some(&mut recorder),
                    &mut NoHook,
                )
            }
            Algorithm::Pndca {
                partition,
                selection,
            } => {
                let p = partition.build(self.dims, &self.model);
                Pndca::new(&self.model, &p)
                    .with_selection(*selection)
                    .run_until(
                        &mut state,
                        &mut rng,
                        t_end,
                        Some(&mut recorder),
                        &mut NoHook,
                    )
            }
            Algorithm::LPndca {
                partition,
                l,
                visit,
            } => {
                let p = partition.build(self.dims, &self.model);
                LPndca::new(&self.model, &p, *l)
                    .with_visit(*visit)
                    .run_until(
                        &mut state,
                        &mut rng,
                        t_end,
                        Some(&mut recorder),
                        &mut NoHook,
                    )
            }
            Algorithm::TPndca => {
                let tp = axis_type_partition(&self.model, self.dims);
                TPndca::new(&self.model, tp).run_until(
                    &mut state,
                    &mut rng,
                    t_end,
                    Some(&mut recorder),
                    &mut NoHook,
                )
            }
            Algorithm::Parallel { partition, threads } => {
                let p = partition.build(self.dims, &self.model);
                let mut exec = ParallelPndca::new(&self.model, &p, *threads, self.seed);
                // Whole steps of 1/K until t_end.
                let k = self.model.total_rate();
                let steps = (t_end * k).ceil() as u64;
                exec.run_steps(&mut state, steps, Some(&mut recorder))
            }
            Algorithm::Fskmc {
                gx,
                gy,
                schedule,
                window,
            } => {
                let plan = SplitPlan::new(self.dims, *gx, *gy, self.model.interaction_radius())
                    .expect("valid fskmc block grid");
                let mut exec =
                    FractionalStepKmc::new(&self.model, &plan, *schedule, *window, self.seed);
                exec.run_until(&mut state, t_end, Some(&mut recorder), &mut NoHook)
            }
        };
        SimOutput::new(state, recorder, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_model::library::zgb::zgb_ziff;

    fn sim(algorithm: Algorithm) -> SimOutput {
        Simulator::new(zgb_ziff(0.5, 5.0))
            .dims(Dims::square(20))
            .seed(1)
            .algorithm(algorithm)
            .sample_dt(0.25)
            .run_until(2.0)
    }

    #[test]
    fn all_algorithms_run_and_record() {
        let algorithms = vec![
            Algorithm::Rsm,
            Algorithm::RsmDiscretized,
            Algorithm::Vssm,
            Algorithm::VssmTree,
            Algorithm::Frm,
            Algorithm::Ndca { shuffled: false },
            Algorithm::Ndca { shuffled: true },
            Algorithm::Pndca {
                partition: PartitionSpec::FiveColoring,
                selection: ChunkSelection::RandomOrder,
            },
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 1,
                visit: ChunkVisit::SizeWeighted,
            },
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 80,
                visit: ChunkVisit::RandomOnce,
            },
            Algorithm::TPndca,
            Algorithm::Parallel {
                partition: PartitionSpec::FiveColoring,
                threads: 2,
            },
            Algorithm::Fskmc {
                gx: 2,
                gy: 2,
                schedule: Schedule::Lie,
                window: 0.1,
            },
            Algorithm::Fskmc {
                gx: 2,
                gy: 2,
                schedule: Schedule::Strang,
                window: 0.1,
            },
        ];
        for algorithm in algorithms {
            let label = format!("{algorithm:?}");
            let out = sim(algorithm);
            assert!(out.stats().trials > 0, "{label}: no trials");
            assert!(
                out.series(0).len() >= 8,
                "{label}: too few samples ({})",
                out.series(0).len()
            );
            assert!(
                out.state().coverage.matches(&out.state().lattice),
                "{label}: coverage diverged"
            );
            // Something must have adsorbed by t = 2.
            let vacant_final = *out.series(0).values().last().expect("samples");
            assert!(vacant_final < 1.0, "{label}: surface still empty");
        }
    }

    #[test]
    fn seeds_reproduce() {
        let a = sim(Algorithm::Rsm);
        let b = sim(Algorithm::Rsm);
        assert_eq!(a.series(1).values(), b.series(1).values());
    }

    #[test]
    fn different_algorithms_agree_on_kinetics() {
        // RSM and VSSM both simulate the exact ME: their coverage curves
        // must agree within stochastic noise on a 20×20 lattice.
        let rsm = sim(Algorithm::Rsm);
        let vssm = sim(Algorithm::Vssm);
        let dev = psr_stats::rms_deviation(rsm.series(1), vssm.series(1), 50)
            .expect("overlapping series");
        assert!(dev < 0.08, "RSM vs VSSM deviation {dev}");
    }

    #[test]
    fn custom_initial_lattice_used() {
        let model = zgb_ziff(0.5, 5.0);
        let dims = Dims::square(10);
        let full = Lattice::filled(dims, 1); // all CO
        let out = Simulator::new(model)
            .dims(dims)
            .initial_lattice(full)
            .sample_dt(0.5)
            .run_until(0.5);
        let first_co = out.series(1).values()[0];
        assert_eq!(first_co, 1.0);
    }

    #[test]
    #[should_panic(expected = "dimensions disagree")]
    fn mismatched_initial_lattice_panics() {
        let model = zgb_ziff(0.5, 5.0);
        let out = Simulator::new(model)
            .dims(Dims::square(10))
            .initial_lattice(Lattice::filled(Dims::square(5), 0));
        out.run_until(0.1);
    }
}
