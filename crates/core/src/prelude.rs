//! Convenience re-exports for typical use.
//!
//! ```
//! use psr_core::prelude::*;
//! let out = Simulator::new(zgb_ziff(0.5, 10.0))
//!     .dims(Dims::square(20))
//!     .run_until(1.0);
//! assert!(out.stats().trials > 0);
//! ```

pub use crate::output::SimOutput;
pub use crate::session::{Checkpointable, SessionCheckpoint, SimSession};
pub use crate::simulator::{Algorithm, PartitionSpec, Simulator};

pub use psr_ca::lpndca::{ChunkVisit, LPndca};
pub use psr_ca::ndca::Ndca;
pub use psr_ca::partition::Partition;
pub use psr_ca::partition_builder::{
    checkerboard, five_coloring, greedy_coloring, single_chunk, singleton_chunks,
};
pub use psr_ca::pndca::{ChunkSelection, Pndca};
pub use psr_ca::splitting::{FractionalStepKmc, Schedule, SplitPlan};
pub use psr_ca::tpndca::{axis_type_partition, TPndca};
pub use psr_dmc::{MasterEquation, RateMeter, Recorder, Rsm, SimState, TimeMode, Vssm, VssmTree};
pub use psr_lattice::{Coverage, Dims, Lattice, Neighborhood, Offset, Site};
pub use psr_model::library::kuzovkov::{kuzovkov_model, KuzovkovParams, KUZOVKOV_SPECIES};
pub use psr_model::library::zgb::{zgb_model, zgb_ziff, ZgbRates, ZGB_SPECIES};
pub use psr_model::{Model, ModelBuilder, ReactionType, Species, SpeciesSet, Transform};
pub use psr_parallel::{MachineParams, ParallelPndca, SegersDecomposition, SimulatedMachine};
pub use psr_rng::{rng_from_seed, SimRng, StreamFactory};
pub use psr_stats::{detect_peaks, linf_deviation, rms_deviation, OscillationSummary, TimeSeries};
