//! PSR — parallel simulation of surface reactions.
//!
//! A unified facade over the layered crates reproducing Nedea, Lukkien,
//! Jansen & Hilbers, *"Methods for Parallel Simulations of Surface
//! Reactions"* (IPPS 2003):
//!
//! - `psr-lattice` — the 2-D periodic lattice substrate;
//! - `psr-model` — species, reaction types, rates, and the model library
//!   (ZGB CO oxidation, Kuzovkov Pt(100), diffusion, Ising);
//! - `psr-dmc` — the Master-Equation algorithms (RSM, VSSM, FRM) and the
//!   exact ME solver;
//! - `psr-ca` — the paper's partitioned CA family (NDCA, BCA, PNDCA,
//!   L-PNDCA, type-partitioned NDCA);
//! - `psr-parallel` — the threaded chunk executor, machine model, and the
//!   Segers domain-decomposition baseline;
//! - `psr-stats` — time series, deviation metrics, oscillation analysis.
//!
//! # Quickstart
//!
//! ```
//! use psr_core::prelude::*;
//!
//! // ZGB CO oxidation at CO fraction y = 0.45, reacting fast.
//! let model = zgb_ziff(0.45, 10.0);
//! let output = Simulator::new(model)
//!     .dims(Dims::square(50))
//!     .seed(2003)
//!     .algorithm(Algorithm::Rsm)
//!     .sample_dt(0.1)
//!     .run_until(5.0);
//! let co = output.series(1); // species id 1 = CO
//! assert!(co.len() > 10);
//! ```

#![warn(missing_docs)]

pub mod output;
pub mod prelude;
pub mod session;
pub mod simulator;

pub use output::SimOutput;
pub use session::{Checkpointable, SessionCheckpoint, SimSession};
pub use simulator::{Algorithm, PartitionSpec, Simulator};

// Re-export the layered crates under stable names.
pub use psr_ca as ca;
pub use psr_dmc as dmc;
pub use psr_lattice as lattice;
pub use psr_model as model;
pub use psr_parallel as parallel;
pub use psr_rng as rng;
pub use psr_stats as stats;
