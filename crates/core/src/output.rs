//! Simulation output: final state, coverage series, run statistics.

use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::RunStats;
use psr_dmc::sim::SimState;
use psr_stats::TimeSeries;

/// Everything a [`crate::Simulator`] run produces.
#[derive(Clone, Debug)]
pub struct SimOutput {
    state: SimState,
    recorder: Recorder,
    stats: RunStats,
}

impl SimOutput {
    /// Bundle the pieces (used by the simulator).
    pub fn new(state: SimState, recorder: Recorder, stats: RunStats) -> Self {
        SimOutput {
            state,
            recorder,
            stats,
        }
    }

    /// The final simulation state (lattice + coverage + clock).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Trial/event counters.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The sampled coverage series of one species id.
    pub fn series(&self, species: u8) -> &TimeSeries {
        self.recorder.series(species)
    }

    /// Sum of several species' coverage series (e.g. total CO in the
    /// Kuzovkov model, where CO lives on two phases).
    pub fn combined_series(&self, species: &[u8]) -> TimeSeries {
        self.recorder.combined_series(species)
    }

    /// The recorder with all series.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Final coverage fraction of a species.
    pub fn final_fraction(&self, species: u8) -> f64 {
        self.state.coverage.fraction(species)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::{Coverage, Dims, Lattice};
    use psr_model::library::zgb::zgb_ziff;

    #[test]
    fn accessors_expose_the_pieces() {
        let model = zgb_ziff(0.5, 1.0);
        let lattice = Lattice::filled(Dims::square(4), 0);
        let state = SimState::new(lattice, &model);
        let mut recorder = Recorder::new(3, 1.0);
        recorder.record(0.0, &Coverage::uniform(16, 3, 0));
        let out = SimOutput::new(
            state,
            recorder,
            RunStats {
                trials: 5,
                executed: 2,
            },
        );
        assert_eq!(out.stats().trials, 5);
        assert_eq!(out.series(0).len(), 1);
        assert_eq!(out.final_fraction(0), 1.0);
        assert_eq!(out.combined_series(&[1, 2]).values(), &[0.0]);
    }
}
