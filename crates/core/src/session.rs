//! Step-wise, checkpointable simulation sessions.
//!
//! [`crate::Simulator::run_until`] is fire-and-forget: it owns the state and
//! RNG for the whole run. Long ensemble jobs (the `psr-engine` experiment
//! engine) instead need to *pause* a simulation at an arbitrary step,
//! serialise everything required to continue it bit-identically — lattice,
//! clock, step count, RNG stream — and pick it up later, possibly in a
//! different process. [`SimSession`] provides that: it runs a configured
//! algorithm in blocks of whole steps and implements [`Checkpointable`].
//!
//! Resume fidelity relies on two properties of the step-driven algorithms:
//! the RNG consumption of a step depends only on the (state, RNG) pair at
//! its start — there is no hidden cross-step generator state — and every
//! auxiliary structure (propensity caches, alias tables) is a pure function
//! of the model and lattice, so it can be rebuilt after a restore. The
//! free-running event-driven algorithms (VSSM, FRM) carry pending-event
//! queues that are *not* pure functions of the lattice; they are rejected
//! at session construction. The fractional-step splitting executor
//! (`fskmc`) runs exact KMC *inside* each window but keys every RNG stream
//! by `(window, slot, block)`, so window boundaries are clean checkpoint
//! seams: one session step = one whole window, resumable from
//! `(lattice, window count)` alone.

use crate::simulator::Algorithm;
use psr_ca::lpndca::LPndca;
use psr_ca::ndca::{Ndca, SweepOrder};
use psr_ca::partition::Partition;
use psr_ca::pndca::Pndca;
use psr_ca::splitting::{FractionalStepKmc, SplitPlan};
use psr_ca::tpndca::{axis_type_partition, TPndca, TypePartition};
use psr_dmc::events::EventHook;
use psr_dmc::rsm::{Rsm, RunStats, TimeMode};
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice};
use psr_model::Model;
use psr_rng::{rng_from_seed, Pcg32, SimRng};

/// Everything needed to continue a [`SimSession`] bit-identically: the
/// configuration, the clock, the step count, and the serialised RNG.
///
/// The model and algorithm are *not* part of the checkpoint — a checkpoint
/// only resumes correctly into a session built with the same configuration.
/// `psr-engine` guarantees this by keying checkpoint files on the job spec.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionCheckpoint {
    /// The lattice configuration.
    pub lattice: Lattice,
    /// Simulated clock.
    pub time: f64,
    /// Whole algorithm steps completed since the initial state.
    pub steps: u64,
    /// Serialised RNG state words ([`Pcg32::state`]).
    pub rng: [u64; 2],
}

/// Save/restore hook for resumable simulations.
pub trait Checkpointable {
    /// Capture everything needed to continue bit-identically.
    fn checkpoint(&self) -> SessionCheckpoint;

    /// Resume from a checkpoint captured on an identically configured
    /// instance.
    ///
    /// # Errors
    ///
    /// Rejects checkpoints whose lattice dimensions disagree with the
    /// configuration or whose RNG words are corrupt.
    fn restore(&mut self, ck: &SessionCheckpoint) -> Result<(), String>;
}

/// A paused/resumable simulation: state + RNG + algorithm configuration,
/// advanced in blocks of whole steps.
///
/// One *step* is the algorithm's natural unit: `N` trials for RSM (one MC
/// step), one full sweep for NDCA, one chunk schedule for the partitioned
/// variants.
#[derive(Clone, Debug)]
pub struct SimSession {
    model: Model,
    algorithm: Algorithm,
    dims: Dims,
    /// Prebuilt site partition for the partitioned algorithms.
    partition: Option<Partition>,
    /// Prebuilt Ω×T partition for `TPndca`.
    types: Option<TypePartition>,
    /// Prebuilt block decomposition for `Fskmc`.
    split: Option<SplitPlan>,
    /// Master seed: `Fskmc` derives its counter-keyed streams from it (the
    /// free-running `rng` below is untouched by that algorithm).
    seed: u64,
    state: SimState,
    rng: SimRng,
    steps_done: u64,
    totals: RunStats,
}

impl SimSession {
    /// Build a session from simulator configuration (used by
    /// [`crate::Simulator::into_session`]).
    ///
    /// # Errors
    ///
    /// Rejects algorithms that cannot be checkpointed step-wise (VSSM, FRM
    /// and the threaded executor, which owns per-slice streams).
    pub(crate) fn from_parts(
        model: Model,
        dims: Dims,
        seed: u64,
        algorithm: Algorithm,
        initial: Option<Lattice>,
    ) -> Result<Self, String> {
        let (partition, types, split) = match &algorithm {
            Algorithm::Rsm | Algorithm::RsmDiscretized | Algorithm::Ndca { .. } => {
                (None, None, None)
            }
            Algorithm::Pndca { partition, .. } => (Some(partition.build(dims, &model)), None, None),
            Algorithm::LPndca { partition, .. } => {
                (Some(partition.build(dims, &model)), None, None)
            }
            Algorithm::TPndca => (None, Some(axis_type_partition(&model, dims)), None),
            Algorithm::Fskmc { gx, gy, window, .. } => {
                if !window.is_finite() || *window <= 0.0 {
                    return Err(format!(
                        "fskmc window must be positive and finite (got {window})"
                    ));
                }
                let plan = SplitPlan::new(dims, *gx, *gy, model.interaction_radius())
                    .map_err(|e| format!("fskmc: {e}"))?;
                (None, None, Some(plan))
            }
            other => {
                return Err(format!(
                    "algorithm {other:?} does not support checkpointed step-wise execution"
                ))
            }
        };
        let lattice = initial.unwrap_or_else(|| Lattice::filled(dims, 0));
        if lattice.dims() != dims {
            return Err(format!(
                "initial lattice is {:?}, configured dims are {dims:?}",
                lattice.dims()
            ));
        }
        let state = SimState::new(lattice, &model);
        Ok(SimSession {
            model,
            algorithm,
            dims,
            partition,
            types,
            split,
            seed,
            state,
            rng: rng_from_seed(seed),
            steps_done: 0,
            totals: RunStats::default(),
        })
    }

    /// The model being simulated.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The current simulation state.
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Simulated clock.
    pub fn time(&self) -> f64 {
        self.state.time
    }

    /// Whole steps completed since the initial state (survives restore).
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// Trial/event counters accumulated by this instance (reset on
    /// restore: they count work done by this process, not by the job).
    pub fn totals(&self) -> RunStats {
        self.totals
    }

    /// Advance by `steps` whole algorithm steps, reporting every trial to
    /// `hook`.
    pub fn run_blocks(&mut self, steps: u64, hook: &mut impl EventHook) -> RunStats {
        let state = &mut self.state;
        let rng = &mut self.rng;
        let stats = match &self.algorithm {
            Algorithm::Rsm => Rsm::new(&self.model).run_mc_steps(state, rng, steps, None, hook),
            Algorithm::RsmDiscretized => Rsm::new(&self.model)
                .with_time_mode(TimeMode::Discretized)
                .run_mc_steps(state, rng, steps, None, hook),
            Algorithm::Ndca { shuffled } => {
                let order = if *shuffled {
                    SweepOrder::Shuffled
                } else {
                    SweepOrder::RowMajor
                };
                Ndca::new(&self.model)
                    .with_order(order)
                    .run_steps(state, rng, steps, None, hook)
            }
            Algorithm::Pndca { selection, .. } => {
                let p = self.partition.as_ref().expect("partition prebuilt");
                Pndca::new(&self.model, p)
                    .with_selection(*selection)
                    .run_steps(state, rng, steps, None, hook)
            }
            Algorithm::LPndca { l, visit, .. } => {
                let p = self.partition.as_ref().expect("partition prebuilt");
                LPndca::new(&self.model, p, *l)
                    .with_visit(*visit)
                    .run_steps(state, rng, steps, None, hook)
            }
            Algorithm::TPndca => {
                let tp = self.types.clone().expect("type partition prebuilt");
                TPndca::new(&self.model, tp).run_steps(state, rng, steps, None, hook)
            }
            Algorithm::Fskmc {
                schedule, window, ..
            } => {
                // One step = one whole window. The executor draws from
                // streams keyed on (window, slot, block) — the session's
                // free-running rng is deliberately untouched, which is what
                // makes the window boundary a checkpoint seam.
                let plan = self.split.as_ref().expect("split plan prebuilt");
                let mut exec =
                    FractionalStepKmc::new(&self.model, plan, *schedule, *window, self.seed);
                exec.set_start_window(self.steps_done);
                exec.run_windows(state, steps, None, hook)
            }
            other => unreachable!("{other:?} rejected at construction"),
        };
        self.steps_done += steps;
        self.totals += stats;
        stats
    }
}

impl Checkpointable for SimSession {
    fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            lattice: self.state.lattice.clone(),
            time: self.state.time,
            steps: self.steps_done,
            rng: self.rng.state(),
        }
    }

    fn restore(&mut self, ck: &SessionCheckpoint) -> Result<(), String> {
        if ck.lattice.dims() != self.dims {
            return Err(format!(
                "checkpoint lattice is {:?}, session dims are {:?}",
                ck.lattice.dims(),
                self.dims
            ));
        }
        self.rng = Pcg32::from_state(ck.rng)?;
        self.state = SimState::new(ck.lattice.clone(), &self.model);
        self.state.time = ck.time;
        self.steps_done = ck.steps;
        self.totals = RunStats::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{PartitionSpec, Simulator};
    use psr_ca::lpndca::ChunkVisit;
    use psr_ca::pndca::ChunkSelection;
    use psr_ca::splitting::Schedule;
    use psr_dmc::events::NoHook;
    use psr_model::library::zgb::zgb_ziff;

    fn session(algorithm: Algorithm) -> SimSession {
        Simulator::new(zgb_ziff(0.5, 5.0))
            .dims(Dims::square(20))
            .seed(11)
            .algorithm(algorithm)
            .into_session()
            .expect("steppable algorithm")
    }

    fn steppable_algorithms() -> Vec<Algorithm> {
        vec![
            Algorithm::Rsm,
            Algorithm::RsmDiscretized,
            Algorithm::Ndca { shuffled: false },
            Algorithm::Ndca { shuffled: true },
            Algorithm::Pndca {
                partition: PartitionSpec::FiveColoring,
                selection: ChunkSelection::RandomOrder,
            },
            Algorithm::Pndca {
                partition: PartitionSpec::FiveColoring,
                selection: ChunkSelection::WeightedByRates,
            },
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 5,
                visit: ChunkVisit::SizeWeighted,
            },
            Algorithm::TPndca,
            // The window-boundary checkpoint seam: exact KMC inside each
            // window, yet fully steppable (one step = one window).
            Algorithm::Fskmc {
                gx: 2,
                gy: 2,
                schedule: Schedule::Lie,
                window: 0.2,
            },
            Algorithm::Fskmc {
                gx: 2,
                gy: 2,
                schedule: Schedule::Strang,
                window: 0.2,
            },
        ]
    }

    #[test]
    fn block_splitting_does_not_change_the_trajectory() {
        for algorithm in steppable_algorithms() {
            let label = format!("{algorithm:?}");
            let mut split = session(algorithm.clone());
            split.run_blocks(3, &mut NoHook);
            split.run_blocks(7, &mut NoHook);
            let mut whole = session(algorithm);
            whole.run_blocks(10, &mut NoHook);
            assert_eq!(
                split.state().lattice,
                whole.state().lattice,
                "{label}: lattice diverged"
            );
            assert_eq!(
                split.time().to_bits(),
                whole.time().to_bits(),
                "{label}: clock diverged"
            );
            assert_eq!(
                split.checkpoint().rng,
                whole.checkpoint().rng,
                "{label}: RNG diverged"
            );
            assert_eq!(split.totals(), whole.totals(), "{label}: stats diverged");
        }
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        for algorithm in steppable_algorithms() {
            let label = format!("{algorithm:?}");
            let mut original = session(algorithm.clone());
            original.run_blocks(5, &mut NoHook);
            let ck = original.checkpoint();
            assert_eq!(ck.steps, 5, "{label}");
            original.run_blocks(5, &mut NoHook);

            let mut resumed = session(algorithm);
            resumed.restore(&ck).expect("restore");
            assert_eq!(resumed.steps_done(), 5, "{label}");
            resumed.run_blocks(5, &mut NoHook);

            assert_eq!(
                resumed.state().lattice,
                original.state().lattice,
                "{label}: lattice diverged after resume"
            );
            assert_eq!(
                resumed.time().to_bits(),
                original.time().to_bits(),
                "{label}: clock diverged after resume"
            );
            assert_eq!(
                resumed.checkpoint().rng,
                original.checkpoint().rng,
                "{label}: RNG diverged after resume"
            );
            assert!(
                resumed.state().coverage.matches(&resumed.state().lattice),
                "{label}: coverage inconsistent after resume"
            );
        }
    }

    #[test]
    fn event_driven_algorithms_are_rejected() {
        for algorithm in [
            Algorithm::Vssm,
            Algorithm::VssmTree,
            Algorithm::Frm,
            Algorithm::Parallel {
                partition: PartitionSpec::FiveColoring,
                threads: 2,
            },
        ] {
            let err = Simulator::new(zgb_ziff(0.5, 5.0))
                .dims(Dims::square(20))
                .algorithm(algorithm)
                .into_session()
                .unwrap_err();
            assert!(err.contains("step-wise"), "unexpected error: {err}");
        }
    }

    #[test]
    fn bad_fskmc_configurations_are_rejected_at_build() {
        // 3 does not divide 20.
        let err = Simulator::new(zgb_ziff(0.5, 5.0))
            .dims(Dims::square(20))
            .algorithm(Algorithm::Fskmc {
                gx: 3,
                gy: 2,
                schedule: Schedule::Lie,
                window: 0.1,
            })
            .into_session()
            .unwrap_err();
        assert!(err.contains("divide"), "unexpected error: {err}");
        let err = Simulator::new(zgb_ziff(0.5, 5.0))
            .dims(Dims::square(20))
            .algorithm(Algorithm::Fskmc {
                gx: 2,
                gy: 2,
                schedule: Schedule::Lie,
                window: 0.0,
            })
            .into_session()
            .unwrap_err();
        assert!(err.contains("window"), "unexpected error: {err}");
    }

    #[test]
    fn fskmc_session_leaves_the_free_running_rng_untouched() {
        // All fskmc draws come from counter-keyed streams; the session rng
        // must stay at its seed state so checkpoints are trivially stable.
        let algorithm = Algorithm::Fskmc {
            gx: 2,
            gy: 2,
            schedule: Schedule::Strang,
            window: 0.2,
        };
        let mut s = session(algorithm);
        let before = s.checkpoint().rng;
        let stats = s.run_blocks(5, &mut NoHook);
        assert!(stats.executed > 0, "no events in 5 windows");
        assert_eq!(s.checkpoint().rng, before);
        assert_eq!(s.time().to_bits(), (0.2f64 * 5.0).to_bits());
    }

    #[test]
    fn restore_rejects_wrong_dims_and_bad_rng() {
        let mut s = session(Algorithm::Rsm);
        let mut ck = s.checkpoint();
        ck.lattice = Lattice::filled(Dims::square(10), 0);
        assert!(s.restore(&ck).unwrap_err().contains("dims"));
        let mut ck = s.checkpoint();
        ck.rng[1] &= !1; // even increment: corrupt
        assert!(s.restore(&ck).unwrap_err().contains("even"));
    }
}
