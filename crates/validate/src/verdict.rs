//! Check results, the terminal summary and `VALIDATE.json`.
//!
//! Every tier reduces to a flat list of [`Check`]s — named pass/fail
//! gates with a human-readable detail line and named metrics. The
//! [`Report`] groups them by tier and renders both the CLI summary and
//! the machine-readable JSON document that `scripts/validate.sh`
//! writes for CI (built with the engine's hand-rolled
//! [`JsonLine`](psr_engine::journal::JsonLine) encoder — no serde in
//! the workspace).

use psr_engine::journal::JsonLine;
use std::fmt::Write as _;

/// One named validation gate.
#[derive(Clone, Debug)]
pub struct Check {
    /// Tier the check belongs to (`exact`, `segers`, `statistical`,
    /// `kink`).
    pub tier: String,
    /// Check name, unique within the tier.
    pub name: String,
    /// Did the gate pass?
    pub pass: bool,
    /// Human-readable explanation with the measured numbers.
    pub detail: String,
    /// Named metrics for machine consumption.
    pub metrics: Vec<(String, f64)>,
}

impl Check {
    /// A check with no metrics yet.
    pub fn new(
        tier: impl Into<String>,
        name: impl Into<String>,
        pass: bool,
        detail: impl Into<String>,
    ) -> Self {
        Check {
            tier: tier.into(),
            name: name.into(),
            pass,
            detail: detail.into(),
            metrics: Vec::new(),
        }
    }

    /// Attach a named metric (builder style).
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push((name.into(), value));
        self
    }
}

/// The full validation outcome.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All checks, in tier order.
    pub checks: Vec<Check>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a tier's checks.
    pub fn extend(&mut self, checks: Vec<Check>) {
        self.checks.extend(checks);
    }

    /// True when every check passed (an empty report passes — the CLI
    /// guards against running zero tiers separately).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count()
    }

    /// Distinct tiers, in first-appearance order.
    fn tiers(&self) -> Vec<&str> {
        let mut tiers: Vec<&str> = Vec::new();
        for c in &self.checks {
            if !tiers.contains(&c.tier.as_str()) {
                tiers.push(&c.tier);
            }
        }
        tiers
    }

    /// Render the terminal summary: one line per check, grouped by
    /// tier, with a trailing verdict line.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for tier in self.tiers() {
            let _ = writeln!(out, "[{tier}]");
            for c in self.checks.iter().filter(|c| c.tier == tier) {
                let mark = if c.pass { "PASS" } else { "FAIL" };
                let _ = writeln!(out, "  {mark}  {:<32} {}", c.name, c.detail);
            }
        }
        let _ = writeln!(
            out,
            "{} checks, {} failed -> {}",
            self.checks.len(),
            self.failures(),
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }

    /// Render the `VALIDATE.json` document:
    ///
    /// ```json
    /// {"smoke":false,"seed":1,"passed":true,
    ///  "tiers":{"exact":{"passed":true,"checks":[...]}}}
    /// ```
    pub fn to_json(&self, smoke: bool, seed: u64) -> String {
        let mut tiers = String::from("{");
        for (i, tier) in self.tiers().iter().enumerate() {
            if i > 0 {
                tiers.push(',');
            }
            let checks: Vec<String> = self
                .checks
                .iter()
                .filter(|c| c.tier == *tier)
                .map(|c| {
                    let mut line = JsonLine::object()
                        .str("name", &c.name)
                        .bool("pass", c.pass)
                        .str("detail", &c.detail);
                    for (k, v) in &c.metrics {
                        line = line.f64(k, *v);
                    }
                    line.finish()
                })
                .collect();
            let tier_pass = self
                .checks
                .iter()
                .filter(|c| c.tier == *tier)
                .all(|c| c.pass);
            let body = JsonLine::object()
                .bool("passed", tier_pass)
                .raw("checks", &format!("[{}]", checks.join(",")))
                .finish();
            // Tier names are fixed identifiers, safe to splice.
            let _ = write!(tiers, "\"{tier}\":{body}");
        }
        tiers.push('}');
        JsonLine::object()
            .bool("smoke", smoke)
            .u64("seed", seed)
            .u64("checks", self.checks.len() as u64)
            .u64("failed", self.failures() as u64)
            .bool("passed", self.passed())
            .raw("tiers", &tiers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new();
        r.extend(vec![
            Check::new("exact", "a", true, "fine").metric("z", 1.5),
            Check::new("exact", "b", false, "off by \"lots\""),
        ]);
        r.extend(vec![Check::new("kink", "y1", true, "found")]);
        r
    }

    #[test]
    fn pass_and_failure_counts() {
        let r = sample_report();
        assert!(!r.passed());
        assert_eq!(r.failures(), 1);
        assert!(Report::new().passed());
    }

    #[test]
    fn summary_lists_every_check_grouped_by_tier() {
        let s = sample_report().render_summary();
        assert!(s.contains("[exact]"));
        assert!(s.contains("[kink]"));
        assert!(s.contains("PASS"));
        assert!(s.contains("FAIL"));
        assert!(s.contains("3 checks, 1 failed -> FAIL"));
    }

    #[test]
    fn json_document_nests_tiers_and_escapes_details() {
        let json = sample_report().to_json(true, 42);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"smoke\":true"));
        assert!(json.contains("\"seed\":42"));
        assert!(json.contains("\"passed\":false"));
        assert!(json.contains("\"tiers\":{\"exact\":{\"passed\":false,\"checks\":["));
        assert!(json.contains("\"kink\":{\"passed\":true"));
        assert!(json.contains("off by \\\"lots\\\""));
        assert!(json.contains("\"z\":1.5"));
        // Balanced braces/brackets — cheap well-formedness proxy.
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }
}
