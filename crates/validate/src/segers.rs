//! Segers correctness criteria (paper §6) over every algorithm.
//!
//! The paper's definition of a *correct* simulator: only enabled
//! reactions execute, waiting times of type `i` are `Exp(k_i)`, and
//! types fire in proportion to their rates. On the always-enabled
//! probe model both criteria become exact and testable for any
//! algorithm the session layer can drive:
//!
//! - criterion 1 — KS test of the inter-fire times at one fixed site
//!   against `Exp(k_i)`. The discrete-time algorithms (RSM with the
//!   `1/(N·K)` clock, the whole CA family) produce geometric waiting
//!   times with success probability `p = k_i / K`; the KS distance to
//!   the exponential is `O(p)`, so the probe type's rate is kept small
//!   against a large ballast rate to keep the bias inside the test's
//!   resolution at the sample sizes used here;
//! - criterion 2 — chi-square of executed counts per type against the
//!   rate proportions `k_i / K`;
//! - a power control: the same KS machinery must reject a doubled rate.

use crate::verdict::Check;
use psr_ca::lpndca::ChunkVisit;
use psr_ca::pndca::ChunkSelection;
use psr_ca::splitting::Schedule;
use psr_core::{Algorithm, PartitionSpec, Simulator};
use psr_dmc::correctness::{
    always_enabled_model, PairHook, TypeFrequencyCounter, WaitingTimeSampler,
};
use psr_lattice::{Dims, Site};
use psr_stats::chi_square_proportions;

const TIER: &str = "segers";

/// Probe rates: the tracked type (index 1, `k = 0.8`) is 4% of the
/// total `K = 20`, so the geometric-vs-exponential bias `~p/2 = 0.02`
/// stays below the KS resolution `1.628/√n` for `n ≲ 1600` samples.
const RATES: [f64; 4] = [0.4, 0.8, 1.2, 17.6];
const PROBE_REACTION: usize = 1;

/// Budget of the Segers tier.
#[derive(Clone, Copy, Debug)]
pub struct SegersConfig {
    /// Waiting-time samples to collect per algorithm.
    pub target_samples: usize,
    /// KS / chi-square significance level.
    pub alpha: f64,
    /// Base seed; each algorithm offsets it.
    pub base_seed: u64,
}

impl SegersConfig {
    /// Full-tier budget.
    pub fn full(base_seed: u64) -> Self {
        SegersConfig {
            target_samples: 800,
            alpha: 0.01,
            base_seed,
        }
    }

    /// Smoke-tier budget.
    pub fn smoke(base_seed: u64) -> Self {
        SegersConfig {
            target_samples: 250,
            alpha: 0.01,
            base_seed,
        }
    }
}

/// Every algorithm family the session layer can run, including the CA
/// variants' partition/selection axes, each with the cluster size of
/// its type draws: the number of executed events per *independent*
/// reaction-type selection. Per-trial algorithms draw a fresh type for
/// every site (cluster 1); T-PNDCA draws one type per chunk *sweep*,
/// so on the always-enabled probe all `N/2 = 50` checkerboard sites
/// execute that same type — the chi-square must count sweeps, not
/// events, or its variance assumption is off by the cluster factor.
/// The 10×10 probe lattice is divisible by 5 (five-coloring) and even
/// (T-PNDCA checkerboards).
pub fn segers_algorithms() -> Vec<(&'static str, Algorithm, u64)> {
    vec![
        ("rsm", Algorithm::Rsm, 1),
        ("rsm-discretized", Algorithm::RsmDiscretized, 1),
        ("ndca", Algorithm::Ndca { shuffled: false }, 1),
        ("ndca-shuffled", Algorithm::Ndca { shuffled: true }, 1),
        (
            "pndca-five-random",
            Algorithm::Pndca {
                partition: PartitionSpec::FiveColoring,
                selection: ChunkSelection::RandomOrder,
            },
            1,
        ),
        (
            "pndca-greedy-weighted",
            Algorithm::Pndca {
                partition: PartitionSpec::Greedy,
                selection: ChunkSelection::WeightedByRates,
            },
            1,
        ),
        (
            "lpndca-l1",
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 1,
                visit: ChunkVisit::SizeWeighted,
            },
            1,
        ),
        (
            "lpndca-l20",
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 20,
                visit: ChunkVisit::RandomOnce,
            },
            1,
        ),
        ("tpndca", Algorithm::TPndca, 50),
        // Fractional-step KMC runs exact VSSM inside each block, so both
        // Segers criteria must hold exactly; the probe model's single-site
        // identity reactions commute across blocks, making even a coarse
        // window exact. Strang exercises the palindromic slot table.
        (
            "fskmc-strang",
            Algorithm::Fskmc {
                gx: 2,
                gy: 2,
                schedule: Schedule::Strang,
                window: 0.5,
            },
            1,
        ),
    ]
}

struct Probe {
    waiting: WaitingTimeSampler,
    frequencies: TypeFrequencyCounter,
}

fn run_probe(cfg: &SegersConfig, algorithm: &Algorithm, seed: u64) -> Probe {
    let model = always_enabled_model(&RATES);
    let k_total = model.total_rate();
    let num_reactions = model.num_reactions();
    let mut session = Simulator::new(model)
        .dims(Dims::square(10))
        .seed(seed)
        .algorithm(algorithm.clone())
        .into_session()
        .expect("probe algorithms support sessions");
    let mut hook = PairHook(
        WaitingTimeSampler::new(Site(0), PROBE_REACTION),
        TypeFrequencyCounter::new(num_reactions),
    );
    // The probe type fires at 0.8/time-unit at the tracked site; one
    // block of `50·K` steps covers ~50 time units ≈ 40 samples. Cap the
    // loop well above the expected need so a stuck algorithm fails the
    // sample-count gate instead of hanging.
    // One session "step" is one event for the per-event algorithms but one
    // *window* (Δt of simulated time) for fractional-step KMC.
    let block = match algorithm {
        Algorithm::Fskmc { window, .. } => (50.0 / window).ceil() as u64,
        _ => (50.0 * k_total).ceil() as u64,
    };
    let expected_blocks = cfg.target_samples as u64 / 30 + 2;
    for _ in 0..expected_blocks * 4 {
        if hook.0.samples.len() >= cfg.target_samples {
            break;
        }
        session.run_blocks(block, &mut hook);
    }
    Probe {
        waiting: hook.0,
        frequencies: hook.1,
    }
}

/// Run the Segers tier and return one waiting-time and one
/// type-frequency [`Check`] per algorithm, plus the power control.
pub fn segers_checks(cfg: &SegersConfig) -> Vec<Check> {
    let mut checks = Vec::new();
    for (offset, (name, algorithm, cluster)) in segers_algorithms().into_iter().enumerate() {
        let probe = run_probe(cfg, &algorithm, cfg.base_seed + offset as u64 * 7919);
        let n = probe.waiting.samples.len();
        let enough = n >= cfg.target_samples;

        let ks = probe.waiting.ks_against(RATES[PROBE_REACTION]);
        checks.push(
            Check::new(
                TIER,
                format!("waiting-time-{name}"),
                enough && ks.accepts(cfg.alpha),
                format!(
                    "KS D = {:.4} (scaled {:.3}) over {n} waiting times vs Exp({})",
                    ks.statistic, ks.scaled, RATES[PROBE_REACTION]
                ),
            )
            .metric("ks_scaled", ks.scaled)
            .metric("samples", n as f64)
            .metric("margin", ks.margin(cfg.alpha)),
        );

        // Count independent type selections, not raw events: sweep-based
        // algorithms execute `cluster` same-type events per draw (on the
        // always-enabled probe every sweep fires on the full chunk, so
        // the division is exact).
        let selections: Vec<u64> = probe
            .frequencies
            .counts
            .iter()
            .map(|&c| c / cluster)
            .collect();
        let chi2 = chi_square_proportions(&selections, &RATES);
        checks.push(
            Check::new(
                TIER,
                format!("type-frequency-{name}"),
                chi2.accepts(cfg.alpha),
                format!(
                    "chi2 = {:.2} (df {}), p = {:.4} over {} type selections ({} events, cluster {cluster})",
                    chi2.statistic,
                    chi2.df,
                    chi2.p_value,
                    selections.iter().sum::<u64>(),
                    probe.frequencies.total()
                ),
            )
            .metric("chi2", chi2.statistic)
            .metric("p_value", chi2.p_value)
            .metric("margin", chi2.p_value - cfg.alpha),
        );
    }

    // Power control: the KS criterion must reject a wrong rate.
    let probe = run_probe(cfg, &Algorithm::Rsm, cfg.base_seed);
    let wrong = probe.waiting.ks_against(2.0 * RATES[PROBE_REACTION]);
    checks.push(
        Check::new(
            TIER,
            "waiting-time-power-control",
            !wrong.accepts(cfg.alpha),
            format!(
                "RSM waiting times vs Exp({}) (double the true rate): scaled D = {:.2} (must reject)",
                2.0 * RATES[PROBE_REACTION],
                wrong.scaled
            ),
        )
        .metric("ks_scaled", wrong.scaled)
        // The control passes by *rejecting*, so its headroom is how far
        // the statistic sits above the critical value.
        .metric("margin", -wrong.margin(cfg.alpha)),
    );
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsm_probe_satisfies_both_criteria() {
        let cfg = SegersConfig {
            target_samples: 300,
            alpha: 0.01,
            base_seed: 17,
        };
        let probe = run_probe(&cfg, &Algorithm::Rsm, 17);
        assert!(probe.waiting.samples.len() >= 300);
        assert!(probe
            .waiting
            .ks_against(RATES[PROBE_REACTION])
            .accepts(0.01));
        let chi2 = chi_square_proportions(&probe.frequencies.counts, &RATES);
        assert!(chi2.accepts(0.01), "p = {}", chi2.p_value);
    }

    #[test]
    fn ndca_probe_collects_geometric_waiting_times_that_pass() {
        // The discretization bias argument in the module docs, verified:
        // at p = 0.04 and ~300 samples the KS test still accepts.
        let cfg = SegersConfig {
            target_samples: 300,
            alpha: 0.01,
            base_seed: 23,
        };
        let probe = run_probe(&cfg, &Algorithm::Ndca { shuffled: false }, 23);
        let ks = probe.waiting.ks_against(RATES[PROBE_REACTION]);
        assert!(ks.accepts(0.01), "scaled D = {}", ks.scaled);
    }

    #[test]
    fn wrong_rate_is_rejected() {
        let cfg = SegersConfig {
            target_samples: 300,
            alpha: 0.01,
            base_seed: 31,
        };
        let probe = run_probe(&cfg, &Algorithm::Rsm, 31);
        assert!(!probe
            .waiting
            .ks_against(2.0 * RATES[PROBE_REACTION])
            .accepts(0.01));
    }
}
