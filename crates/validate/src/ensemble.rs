//! Replica ensembles with sequential stopping.
//!
//! The paper's accuracy experiments (§6) average "a large number of
//! small, independent simulations". How large is "large"? This module
//! makes that adaptive: replicas are added in batches until every
//! targeted observable's bootstrap CI is tighter than its precision
//! target (or the replica budget runs out). That keeps the smoke tier
//! fast and the full tier honest — precision is a measured property,
//! not a hope.

use crate::bootstrap::{bootstrap_mean_ci, BootstrapCi};
use psr_parallel::run_replicas;
use std::collections::BTreeMap;

/// Budget and precision parameters of a sequential ensemble.
#[derive(Clone, Debug)]
pub struct SequentialConfig {
    /// Replicas always run before the first convergence check.
    pub min_replicas: u64,
    /// Hard replica budget.
    pub max_replicas: u64,
    /// Replicas added per round.
    pub batch: u64,
    /// Worker threads for the replica pool.
    pub workers: usize,
    /// Bootstrap resamples per CI.
    pub resamples: usize,
    /// CI confidence level.
    pub ci_level: f64,
    /// Master seed; replica `i` sees seed `base_seed + i`.
    pub base_seed: u64,
}

impl SequentialConfig {
    /// Defaults tuned for the full validation tier.
    pub fn full(base_seed: u64, workers: usize) -> Self {
        SequentialConfig {
            min_replicas: 12,
            max_replicas: 48,
            batch: 8,
            workers,
            resamples: 400,
            ci_level: 0.95,
            base_seed,
        }
    }

    /// Cheaper defaults for the CI smoke tier. Replicas of the smoke
    /// jobs are cheap, so the budget still allows the sequential loop
    /// to actually refine (the smoke precision targets need ~20–30
    /// replicas of the 20×20 ZGB job).
    pub fn smoke(base_seed: u64, workers: usize) -> Self {
        SequentialConfig {
            min_replicas: 8,
            max_replicas: 40,
            batch: 8,
            workers,
            resamples: 200,
            ci_level: 0.95,
            base_seed,
        }
    }
}

/// One observable's replica distribution and its bootstrap CI.
#[derive(Clone, Debug)]
pub struct ObservableSummary {
    /// Observable name (as returned by the replica closure).
    pub name: String,
    /// One value per replica, in replica order. Non-finite values
    /// (e.g. "no period detected") are kept here but excluded from the
    /// CI.
    pub samples: Vec<f64>,
    /// Bootstrap CI over the finite samples (`None` if fewer than 2).
    pub ci: Option<BootstrapCi>,
}

impl ObservableSummary {
    /// The finite samples only — what the CI and the downstream
    /// two-sample tests operate on.
    pub fn finite_samples(&self) -> Vec<f64> {
        self.samples
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect()
    }

    /// Fraction of replicas that produced a finite value.
    pub fn finite_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.finite_samples().len() as f64 / self.samples.len() as f64
    }
}

/// Result of a sequential ensemble run.
#[derive(Clone, Debug)]
pub struct EnsembleOutcome {
    /// Total replicas executed.
    pub replicas: u64,
    /// Per-observable distributions, sorted by name.
    pub observables: Vec<ObservableSummary>,
    /// True if every precision target was met within the budget.
    pub converged: bool,
}

impl EnsembleOutcome {
    /// Look up one observable by name.
    pub fn observable(&self, name: &str) -> Option<&ObservableSummary> {
        self.observables.iter().find(|o| o.name == name)
    }
}

/// Run replicas in sequential batches until every `(name, target)`
/// precision target is met or `max_replicas` is reached.
///
/// The closure receives a replica seed (already offset by
/// `base_seed`) and returns named observables; every replica must
/// return the same set of names. Convergence means: for each targeted
/// observable, the bootstrap CI half-width over the finite samples is
/// `<= target`. Untargeted observables are collected but never gate.
///
/// # Panics
///
/// Panics on an empty/zero budget, on replicas that disagree about the
/// observable set, or on a target naming an unknown observable.
pub fn run_sequential<F>(cfg: &SequentialConfig, targets: &[(&str, f64)], run: F) -> EnsembleOutcome
where
    F: Fn(u64) -> Vec<(String, f64)> + Sync,
{
    run_sequential_inner(cfg, targets, |want, base| {
        run_replicas(want, cfg.workers, |i| run(base + i))
    })
}

/// [`run_sequential`] over a *batch* replica runner: each round asks
/// `batch_run(want, base_seed)` for `want` whole replicas at once instead
/// of mapping a per-seed closure over a worker pool. This is how the
/// lockstep batch engine (`psr-batch`) plugs into sequential sampling —
/// replica `i` of a round is still seeded `base_seed + i`, so a batched
/// ensemble consumes exactly the seed sequence the per-replica one does,
/// and (because the engine is bit-identical per slot) produces exactly
/// the same observables, convergence decisions and replica counts.
pub fn run_sequential_batched<F>(
    cfg: &SequentialConfig,
    targets: &[(&str, f64)],
    batch_run: F,
) -> EnsembleOutcome
where
    F: FnMut(u64, u64) -> Vec<Vec<(String, f64)>>,
{
    run_sequential_inner(cfg, targets, batch_run)
}

fn run_sequential_inner(
    cfg: &SequentialConfig,
    targets: &[(&str, f64)],
    mut next_batch: impl FnMut(u64, u64) -> Vec<Vec<(String, f64)>>,
) -> EnsembleOutcome {
    assert!(cfg.min_replicas > 0, "need at least one replica");
    assert!(cfg.max_replicas >= cfg.min_replicas, "budget below minimum");
    assert!(cfg.batch > 0, "batch must be positive");

    let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut done: u64 = 0;
    let mut converged = false;

    while done < cfg.max_replicas {
        let want = if done < cfg.min_replicas {
            cfg.min_replicas - done
        } else {
            cfg.batch.min(cfg.max_replicas - done)
        };
        let base = cfg.base_seed + done;
        let batch = next_batch(want, base);
        assert_eq!(
            batch.len() as u64,
            want,
            "batch runner returned wrong count"
        );
        for replica in batch {
            for (name, value) in replica {
                samples.entry(name).or_default().push(value);
            }
        }
        done += want;
        let count = samples.values().map(Vec::len).max().unwrap_or(0);
        for (name, values) in &samples {
            assert_eq!(
                values.len(),
                count,
                "replica observable sets disagree at {name:?}"
            );
        }
        converged = targets.iter().all(|(name, target)| {
            let values = samples
                .get(*name)
                .unwrap_or_else(|| panic!("target names unknown observable {name:?}"));
            ci_over(values, cfg).is_some_and(|ci| ci.half_width() <= *target)
        });
        if converged && done >= cfg.min_replicas {
            break;
        }
    }

    let observables = samples
        .into_iter()
        .map(|(name, samples)| {
            let ci = ci_over(&samples, cfg);
            ObservableSummary { name, samples, ci }
        })
        .collect();
    EnsembleOutcome {
        replicas: done,
        observables,
        converged,
    }
}

fn ci_over(samples: &[f64], cfg: &SequentialConfig) -> Option<BootstrapCi> {
    let finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        return None;
    }
    Some(bootstrap_mean_ci(
        &finite,
        cfg.resamples,
        cfg.ci_level,
        cfg.base_seed ^ 0x9E37_79B9_7F4A_7C15,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_rng::rng_from_seed;

    fn cfg() -> SequentialConfig {
        SequentialConfig {
            min_replicas: 4,
            max_replicas: 64,
            batch: 8,
            workers: 2,
            resamples: 200,
            ci_level: 0.95,
            base_seed: 100,
        }
    }

    fn noisy_replica(seed: u64) -> Vec<(String, f64)> {
        let mut rng = rng_from_seed(seed);
        vec![("mean_half".into(), rng.f64()), ("constant".into(), 2.5)]
    }

    #[test]
    fn stops_early_once_targets_are_met() {
        // The constant observable converges instantly; with only that
        // target, the run stops at min_replicas.
        let out = run_sequential(&cfg(), &[("constant", 0.01)], noisy_replica);
        assert!(out.converged);
        assert_eq!(out.replicas, 4);
        assert!(out.observable("mean_half").is_some());
    }

    #[test]
    fn adds_batches_until_a_tight_target_is_met() {
        // Uniform(0,1) has se ≈ 0.29/√n: half-width ≤ 0.1 needs n ≳ 32.
        let out = run_sequential(&cfg(), &[("mean_half", 0.1)], noisy_replica);
        assert!(out.converged, "ran {} replicas", out.replicas);
        assert!(out.replicas > 4, "converged suspiciously early");
        let ci = out.observable("mean_half").unwrap().ci.unwrap();
        assert!(ci.half_width() <= 0.1);
        assert!(ci.contains(0.5), "CI [{}, {}] misses 0.5", ci.lo, ci.hi);
    }

    #[test]
    fn exhausts_the_budget_on_an_impossible_target() {
        let out = run_sequential(&cfg(), &[("mean_half", 1e-6)], noisy_replica);
        assert!(!out.converged);
        assert_eq!(out.replicas, 64);
    }

    #[test]
    fn non_finite_samples_are_excluded_from_the_ci() {
        let out = run_sequential(&cfg(), &[], |seed| {
            let v = if seed % 2 == 0 { 1.0 } else { f64::NAN };
            vec![("period".into(), v)]
        });
        let obs = out.observable("period").unwrap();
        assert!((obs.finite_fraction() - 0.5).abs() < 0.3);
        let ci = obs.ci.unwrap();
        assert_eq!(ci.mean, 1.0);
    }

    #[test]
    fn replica_seeds_are_distinct_and_deterministic() {
        let record = |seed: u64| vec![("seed".into(), seed as f64)];
        let a = run_sequential(&cfg(), &[], record);
        let b = run_sequential(&cfg(), &[], record);
        let seeds_a = &a.observable("seed").unwrap().samples;
        assert_eq!(seeds_a, &b.observable("seed").unwrap().samples);
        let expected: Vec<f64> = (100..104).map(|s| s as f64).collect();
        assert_eq!(seeds_a, &expected);
    }

    #[test]
    #[should_panic(expected = "unknown observable")]
    fn unknown_target_panics() {
        run_sequential(&cfg(), &[("nope", 0.1)], noisy_replica);
    }

    #[test]
    fn batched_runner_reproduces_the_per_replica_ensemble() {
        let targets = [("mean_half", 0.1)];
        let per = run_sequential(&cfg(), &targets, noisy_replica);
        let batched = run_sequential_batched(&cfg(), &targets, |want, base| {
            (0..want).map(|i| noisy_replica(base + i)).collect()
        });
        assert_eq!(per.replicas, batched.replicas);
        assert_eq!(per.converged, batched.converged);
        for (a, b) in per.observables.iter().zip(&batched.observables) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    #[should_panic(expected = "wrong count")]
    fn short_batch_panics() {
        run_sequential_batched(&cfg(), &[], |want, base| {
            (0..want.saturating_sub(1))
                .map(|i| noisy_replica(base + i))
                .collect()
        });
    }
}
