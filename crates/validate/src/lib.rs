//! Statistical validation harness: paper-figure accuracy gates.
//!
//! The algorithm crates each assert *local* invariants (caches match
//! scans, trajectories are seed-reproducible, compiled kernels agree
//! with naive matching). What none of them pin down is the claim the
//! paper actually makes: that every CA variant samples the *same
//! physics* as the DMC reference — the same coverages, the same CO₂
//! turnover, the same oscillations, the same Master-Equation
//! distribution. This crate is that gate, organised as four tiers:
//!
//! - [`exact`] — small-lattice cross-checks against the exactly
//!   integrated Master Equation ([`psr_dmc::master_equation`]): the
//!   final-state distribution of RSM/VSSM/FRM replicas must pass a
//!   chi-square test against the ME, and every CA variant's mean
//!   coverage must sit on the ME expectation;
//! - [`segers`] — the paper's §6 correctness criteria applied to every
//!   algorithm: exponential waiting times (KS) and rate-proportional
//!   type frequencies (chi-square), plus a power control proving the
//!   tests can reject a wrong rate;
//! - [`ensemble`]/[`observables`] — replica ensembles of the ZGB and
//!   Kuzovkov models on production-sized lattices, with [`bootstrap`]
//!   confidence intervals, sequential stopping, and TOST equivalence
//!   verdicts of each CA variant against the DMC reference;
//! - [`kink`] — reproduction of the ZGB phase boundaries: bisection
//!   locates the O-poisoning kink `y₁ ≈ 0.3874` and the CO-poisoning
//!   kink `y₂ ≈ 0.5256` (Ziff, Gulari & Barshad 1986).
//!
//! Every check lands in a [`verdict::Report`] which renders both a
//! terminal summary and the machine-readable `VALIDATE.json` consumed
//! by CI (`scripts/validate.sh`).

#![warn(missing_docs)]

pub mod bootstrap;
pub mod ensemble;
pub mod exact;
pub mod kink;
pub mod observables;
pub mod segers;
pub mod statistical;
pub mod verdict;

pub use bootstrap::{bootstrap_mean_ci, BootstrapCi};
pub use ensemble::{run_sequential, EnsembleOutcome, ObservableSummary, SequentialConfig};
pub use verdict::{Check, Report};
