//! The statistical tier: TOST equivalence gates of CA variants vs DMC.
//!
//! For each CA variant, replica ensembles of the ZGB job are compared
//! against the DMC (RSM) reference ensemble observable-by-observable:
//!
//! - **TOST equivalence** — the gate. A variant passes only when the
//!   `(1−2α)` CI of the mean difference sits inside `(−ε, ε)`, i.e. the
//!   data *demonstrates* agreement within the margin. An underpowered
//!   ensemble yields `Inconclusive`, which fails — precision problems
//!   are surfaced, not absorbed;
//! - **two-sample KS** — a distribution-shape cross-check at the 1%
//!   level (replica counts are small, so this catches gross shape
//!   differences, not subtleties).
//!
//! The full tier also runs the Kuzovkov oscillation job and gates on
//! the §6 question: does the variant oscillate like the reference
//! (indicator fraction), with equivalent period and amplitude?
//!
//! T-PNDCA is gated in the *opposite direction*: its ZGB deviation is
//! a documented property of the whole-chunk type sweeps, so the check
//! requires the TOST verdict `Different` (see [`deviation_checks`]'s
//! doc comment and `tests/equivalence.rs`).

use crate::ensemble::{run_sequential, run_sequential_batched, EnsembleOutcome, SequentialConfig};
use crate::observables::{
    batch_algorithm_for, deviation_algorithms, oscillation_replica, reference_algorithm,
    splitting_algorithm, variant_algorithms, zgb_replica, zgb_replica_sharded, zgb_replicas_batch,
    OscillationJob, ZgbJob,
};
use crate::verdict::Check;
use psr_core::Algorithm;
use psr_lattice::Dims;
use psr_model::library::zgb::zgb_ziff;
use psr_stats::{ks_two_sample, tost_mean_difference, Verdict};

const TIER: &str = "statistical";

/// Equivalence margins per observable, in the observable's own units.
#[derive(Clone, Copy, Debug)]
pub struct Margins {
    /// Coverage margin ε for `theta_co` / `theta_o` / `theta_vacant`.
    pub coverage: f64,
    /// CO₂ turnover margin (events / site / time).
    pub co2_rate: f64,
    /// Oscillation period margin (time units).
    pub period: f64,
    /// Oscillation amplitude margin (coverage units).
    pub amplitude: f64,
}

impl Default for Margins {
    fn default() -> Self {
        Margins {
            coverage: 0.03,
            co2_rate: 0.03,
            period: 10.0,
            amplitude: 0.05,
        }
    }
}

/// Parameters of the statistical tier.
#[derive(Clone, Debug)]
pub struct StatisticalConfig {
    /// The ZGB ensemble job.
    pub zgb: ZgbJob,
    /// The oscillation job (`None` skips it — the smoke tier).
    pub oscillation: Option<OscillationJob>,
    /// Sequential-sampling budget.
    pub seq: SequentialConfig,
    /// Equivalence margins.
    pub margins: Margins,
    /// TOST significance level (per one-sided test).
    pub alpha: f64,
}

impl StatisticalConfig {
    /// Full-tier parameters.
    pub fn full(base_seed: u64, workers: usize) -> Self {
        StatisticalConfig {
            zgb: ZgbJob::full(),
            oscillation: Some(OscillationJob::full()),
            seq: SequentialConfig::full(base_seed, workers),
            margins: Margins::default(),
            alpha: 0.05,
        }
    }

    /// Smoke-tier parameters: smaller lattice, shorter horizon, no
    /// oscillation job, looser margins (the small job is noisier).
    pub fn smoke(base_seed: u64, workers: usize) -> Self {
        StatisticalConfig {
            zgb: ZgbJob::smoke(),
            oscillation: None,
            seq: SequentialConfig::smoke(base_seed, workers),
            margins: Margins {
                coverage: 0.06,
                co2_rate: 0.06,
                ..Margins::default()
            },
            alpha: 0.05,
        }
    }
}

/// Sequential-precision targets: stop adding replicas once the
/// coverage and rate CIs are comfortably inside the margin.
fn zgb_targets(margins: &Margins) -> Vec<(&'static str, f64)> {
    vec![
        ("theta_co", margins.coverage / 3.0),
        ("theta_o", margins.coverage / 3.0),
        ("co2_rate", margins.co2_rate / 3.0),
    ]
}

fn run_zgb_ensemble(cfg: &StatisticalConfig, algorithm: &Algorithm, salt: u64) -> EnsembleOutcome {
    let mut seq = cfg.seq.clone();
    seq.base_seed = cfg.seq.base_seed + salt * 1_000_000;
    let targets = zgb_targets(&cfg.margins);
    // Lockstep-capable variants (NDCA, PNDCA) run through the batch
    // engine: same seeds, bit-identical per-replica observables (pinned
    // by `zgb_batch_matches_single_replicas_bit_exactly`), so routing
    // cannot change any verdict — only the wall clock.
    let model = zgb_ziff(cfg.zgb.y, cfg.zgb.k_react);
    if batch_algorithm_for(algorithm, Dims::square(cfg.zgb.side), &model).is_some() {
        run_sequential_batched(&seq, &targets, |count, base| {
            zgb_replicas_batch(&cfg.zgb, algorithm, count, base).expect("lockstep-capable")
        })
    } else {
        run_sequential(&seq, &targets, |seed| {
            zgb_replica(&cfg.zgb, algorithm, seed)
        })
    }
}

fn equivalence_check(
    name: String,
    reference: &EnsembleOutcome,
    variant: &EnsembleOutcome,
    observable: &str,
    margin: f64,
    alpha: f64,
) -> Check {
    let a = reference
        .observable(observable)
        .expect("reference observable")
        .finite_samples();
    let b = variant
        .observable(observable)
        .expect("variant observable")
        .finite_samples();
    let tost = tost_mean_difference(&a, &b, margin, alpha);
    Check::new(
        TIER,
        name,
        tost.verdict == Verdict::Equivalent,
        format!(
            "{observable}: diff = {:+.4}, {:.0}% CI [{:+.4}, {:+.4}], margin ±{margin} -> {}",
            tost.diff,
            (1.0 - 2.0 * alpha) * 100.0,
            tost.ci_lo,
            tost.ci_hi,
            tost.verdict
        ),
    )
    .metric("diff", tost.diff)
    .metric("ci_lo", tost.ci_lo)
    .metric("ci_hi", tost.ci_hi)
    // Headroom of the equivalence verdict: how deep the CI sits inside
    // the band (negative when it pokes out or the test is underpowered).
    .metric("margin", (tost.ci_lo + margin).min(margin - tost.ci_hi))
}

fn ks_check(
    name: String,
    reference: &EnsembleOutcome,
    variant: &EnsembleOutcome,
    observable: &str,
) -> Check {
    let a = reference
        .observable(observable)
        .expect("reference observable")
        .finite_samples();
    let b = variant
        .observable(observable)
        .expect("variant observable")
        .finite_samples();
    let ks = ks_two_sample(&a, &b);
    Check::new(
        TIER,
        name,
        ks.accepts(0.01),
        format!(
            "{observable}: two-sample KS D = {:.3} (scaled {:.3}) over {}+{} replicas",
            ks.statistic, ks.scaled, ks.n, ks.m
        ),
    )
    .metric("ks_scaled", ks.scaled)
    .metric("margin", ks.margin(0.01))
}

/// Run the statistical tier and return its checks.
pub fn statistical_checks(cfg: &StatisticalConfig) -> Vec<Check> {
    let mut checks = Vec::new();
    let (ref_name, ref_algorithm) = reference_algorithm();
    let reference = run_zgb_ensemble(cfg, &ref_algorithm, 0);
    checks.push(
        Check::new(
            TIER,
            format!("zgb-{ref_name}-converged"),
            reference.converged,
            format!(
                "reference ensemble {} its precision targets after {} replicas",
                if reference.converged { "met" } else { "missed" },
                reference.replicas
            ),
        )
        .metric("replicas", reference.replicas as f64),
    );

    for (salt, (name, algorithm)) in variant_algorithms().into_iter().enumerate() {
        let variant = run_zgb_ensemble(cfg, &algorithm, 1 + salt as u64);
        for observable in ["theta_co", "theta_o", "co2_rate"] {
            let margin = if observable == "co2_rate" {
                cfg.margins.co2_rate
            } else {
                cfg.margins.coverage
            };
            checks.push(equivalence_check(
                format!("zgb-{name}-{observable}"),
                &reference,
                &variant,
                observable,
                margin,
                cfg.alpha,
            ));
        }
        checks.push(ks_check(
            format!("zgb-{name}-ks-theta_co"),
            &reference,
            &variant,
            "theta_co",
        ));
    }

    // The sharded-executor arm: ZGB on `psr-shard`'s domain-decomposed
    // PNDCA (4 workers, halo-frame boundary exchange). The protocol is
    // pinned bit-identically against the shared-lattice executor by
    // `psr-shard`'s differential tests; this gate asks the independent
    // question — that the *physics* matches DMC within the margins.
    {
        let mut seq = cfg.seq.clone();
        seq.base_seed = cfg.seq.base_seed + 50 * 1_000_000;
        let targets = zgb_targets(&cfg.margins);
        let zgb = cfg.zgb;
        let sharded = run_sequential(&seq, &targets, move |seed| {
            zgb_replica_sharded(&zgb, 4, seed)
        });
        for observable in ["theta_co", "theta_o", "co2_rate"] {
            let margin = if observable == "co2_rate" {
                cfg.margins.co2_rate
            } else {
                cfg.margins.coverage
            };
            checks.push(equivalence_check(
                format!("zgb-sharded-{observable}"),
                &reference,
                &sharded,
                observable,
                margin,
                cfg.alpha,
            ));
        }
        checks.push(ks_check(
            "zgb-sharded-ks-theta_co".to_owned(),
            &reference,
            &sharded,
            "theta_co",
        ));
    }

    // The operator-splitting arm: fractional-step KMC (Strang, 2×2).
    // `batch_algorithm_for` has no lockstep equivalent for it, so the
    // ensemble routes through the single-replica session path — the same
    // code the engine checkpoints at window boundaries. The gate is the
    // usual equivalence question: at this window the O(Δt²) splitting
    // bias must be statistically indistinguishable from DMC.
    {
        let (name, algorithm) = splitting_algorithm();
        let variant = run_zgb_ensemble(cfg, &algorithm, 60);
        for observable in ["theta_co", "theta_o", "co2_rate"] {
            let margin = if observable == "co2_rate" {
                cfg.margins.co2_rate
            } else {
                cfg.margins.coverage
            };
            checks.push(equivalence_check(
                format!("zgb-{name}-{observable}"),
                &reference,
                &variant,
                observable,
                margin,
                cfg.alpha,
            ));
        }
        checks.push(ks_check(
            format!("zgb-{name}-ks-theta_co"),
            &reference,
            &variant,
            "theta_co",
        ));
    }

    checks.extend(deviation_checks(cfg, &reference));

    if let Some(osc) = &cfg.oscillation {
        checks.extend(oscillation_checks(cfg, osc));
    }
    checks
}

/// Documented-deviation gates: T-PNDCA's whole-chunk type sweeps bias
/// ZGB toward CO poisoning (the accuracy-for-parallelism trade of the
/// paper's §6, pinned by the tier-1 test
/// `tpndca_on_zgb_shows_the_accuracy_trade`). The gate direction is
/// *reversed*: the check fails if the variant's CO coverage becomes
/// statistically equivalent to DMC, which would mean the algorithm
/// silently changed. The TOST verdict must be `Different` — the CI of
/// the mean difference entirely outside the equivalence band — so an
/// underpowered (`Inconclusive`) ensemble also fails.
fn deviation_checks(cfg: &StatisticalConfig, reference: &EnsembleOutcome) -> Vec<Check> {
    let mut checks = Vec::new();
    for (salt, (name, algorithm)) in deviation_algorithms().into_iter().enumerate() {
        // The deviation signal is O(1), far above replica noise: no
        // sequential refinement needed, so run with no precision
        // targets (stops at min_replicas).
        let mut seq = cfg.seq.clone();
        seq.base_seed = cfg.seq.base_seed + (500 + salt as u64) * 1_000_000;
        let algorithm = algorithm.clone();
        let variant = run_sequential(&seq, &[], move |seed| {
            zgb_replica(&cfg.zgb, &algorithm, seed)
        });
        let a = reference
            .observable("theta_co")
            .expect("reference observable")
            .finite_samples();
        let b = variant
            .observable("theta_co")
            .expect("variant observable")
            .finite_samples();
        let tost = tost_mean_difference(&a, &b, cfg.margins.coverage, cfg.alpha);
        checks.push(
            Check::new(
                TIER,
                format!("zgb-{name}-deviates"),
                tost.verdict == Verdict::Different,
                format!(
                    "theta_co: diff = {:+.4}, CI [{:+.4}, {:+.4}] vs band ±{} -> {} \
                     (expected deviation: whole-chunk type sweeps trade accuracy for parallelism)",
                    tost.diff, tost.ci_lo, tost.ci_hi, cfg.margins.coverage, tost.verdict
                ),
            )
            .metric("diff", tost.diff)
            .metric("ci_lo", tost.ci_lo)
            .metric("ci_hi", tost.ci_hi)
            // Reversed gate: headroom is how far the CI clears the band.
            .metric(
                "margin",
                (tost.ci_lo - cfg.margins.coverage).max(-cfg.margins.coverage - tost.ci_hi),
            ),
        );
    }
    checks
}

/// Oscillation survival: the §6 observable. L-PNDCA with a unit trial
/// budget is the variant the paper says preserves oscillations.
fn oscillation_checks(cfg: &StatisticalConfig, job: &OscillationJob) -> Vec<Check> {
    use psr_ca::lpndca::ChunkVisit;
    use psr_core::PartitionSpec;
    let lpndca = Algorithm::LPndca {
        partition: PartitionSpec::FiveColoring,
        l: 1,
        visit: ChunkVisit::SizeWeighted,
    };
    let (_, ref_algorithm) = reference_algorithm();
    let mut seq = cfg.seq.clone();
    // Oscillation replicas are expensive; the indicator needs no
    // sequential refinement, so pin the budget to the minimum.
    seq.max_replicas = seq.min_replicas;
    let run = |algorithm: &Algorithm, salt: u64| {
        let mut s = seq.clone();
        s.base_seed = seq.base_seed + salt * 1_000_000;
        let algorithm = algorithm.clone();
        run_sequential(&s, &[], move |seed| {
            oscillation_replica(job, &algorithm, seed)
        })
    };
    let reference = run(&ref_algorithm, 100);
    let variant = run(&lpndca, 101);

    let mut checks = Vec::new();
    for (name, out) in [("dmc", &reference), ("lpndca", &variant)] {
        let indicator = out.observable("oscillating").expect("indicator");
        let fraction = indicator.samples.iter().sum::<f64>() / indicator.samples.len() as f64;
        checks.push(
            Check::new(
                TIER,
                format!("osc-{name}-oscillates"),
                fraction >= 0.7,
                format!(
                    "{:.0}% of {} replicas oscillate (need 70%)",
                    fraction * 100.0,
                    indicator.samples.len()
                ),
            )
            .metric("fraction", fraction)
            .metric("margin", fraction - 0.7),
        );
    }
    for (observable, margin) in [
        ("period", cfg.margins.period),
        ("amplitude", cfg.margins.amplitude),
    ] {
        checks.push(equivalence_check(
            format!("osc-lpndca-{observable}"),
            &reference,
            &variant,
            observable,
            margin,
            cfg.alpha,
        ));
    }
    checks
}
