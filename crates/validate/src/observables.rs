//! Replica jobs: what one validation replica simulates and measures.
//!
//! Two production models anchor the statistical tier:
//!
//! - **ZGB** (Figs 2–3): steady-state coverages `θ_CO`, `θ_O`, `θ_*`
//!   and the CO₂ turnover frequency inside the reactive window;
//! - **Kuzovkov/Kortlüke Pt(100)**: global CO-coverage oscillations —
//!   period, amplitude and whether oscillation survives at all (the §6
//!   observable that large-`l` L-PNDCA destroys).
//!
//! Each replica runs one algorithm through the step-wise
//! [`SimSession`](psr_core::session::SimSession) (so the harness
//! exercises the exact code path the engine checkpoints), samples
//! coverages on a fixed block grid, and reduces to scalar observables
//! that [`run_sequential`](crate::ensemble::run_sequential) can
//! bootstrap.

use psr_batch::{BatchAlgorithm, BatchEnsemble, BatchRateMeter};
use psr_ca::lpndca::ChunkVisit;
use psr_ca::pndca::ChunkSelection;
use psr_ca::splitting::Schedule;
use psr_core::{Algorithm, PartitionSpec, Simulator};
use psr_dmc::rate_meter::RateMeter;
use psr_lattice::Dims;
use psr_model::library::kuzovkov::{co_coverage, kuzovkov_model, KuzovkovParams};
use psr_model::library::zgb::{co2_reaction_indices, zgb_ziff};
use psr_model::Model;
use psr_stats::{detect_peaks, TimeSeries};

/// The CA variants gated for *equivalence* against the DMC reference,
/// with display names.
///
/// RSM is the reference itself; the list is every sequential algorithm
/// family from the paper that the session layer can run and that is
/// expected to reproduce DMC physics: NDCA (§4), PNDCA on the
/// 5-coloring (§5), and L-PNDCA with a unit trial budget. Lattice
/// sides must be divisible by 5 (five-coloring) and even (checkerboard
/// in T-PNDCA's per-type partitions).
///
/// T-PNDCA is deliberately *not* here: its whole-chunk type sweeps are
/// a documented accuracy-for-parallelism trade on strongly nonlinear
/// models (a CO-adsorption sweep fills every vacant site of one
/// checkerboard colour in `1/(2K)` time, which pushes ZGB toward CO
/// poisoning). It is gated by [`deviation_algorithms`] instead, which
/// asserts the deviation is *present* — the same contract as the
/// tier-1 test `tpndca_on_zgb_shows_the_accuracy_trade`.
pub fn variant_algorithms() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("ndca", Algorithm::Ndca { shuffled: false }),
        (
            "pndca",
            Algorithm::Pndca {
                partition: PartitionSpec::FiveColoring,
                selection: ChunkSelection::RandomOrder,
            },
        ),
        (
            "lpndca",
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 1,
                visit: ChunkVisit::SizeWeighted,
            },
        ),
    ]
}

/// Variants whose *documented deviation* from DMC is the gate: the
/// validation fails if they silently start matching the reference,
/// because that would mean the algorithm changed underneath us.
pub fn deviation_algorithms() -> Vec<(&'static str, Algorithm)> {
    vec![("tpndca", Algorithm::TPndca)]
}

/// The DMC reference algorithm the variants are compared against.
pub fn reference_algorithm() -> (&'static str, Algorithm) {
    ("dmc-rsm", Algorithm::Rsm)
}

/// The operator-splitting arm: fractional-step KMC on a 2×2 block grid
/// with the Strang (palindromic, `O(Δt²)`) schedule. The window is kept
/// fine enough that the splitting bias from frozen boundary events sits
/// well inside the statistical tier's coverage margins; the `Δt`
/// error-ordering itself is pinned by `tests/splitting_differential.rs`.
pub fn splitting_algorithm() -> (&'static str, Algorithm) {
    (
        "fskmc",
        Algorithm::Fskmc {
            gx: 2,
            gy: 2,
            schedule: Schedule::Strang,
            window: 0.1,
        },
    )
}

/// Parameters of one ZGB ensemble job.
#[derive(Clone, Copy, Debug)]
pub struct ZgbJob {
    /// CO gas-phase fraction `y` (must sit inside the reactive window).
    pub y: f64,
    /// CO+O reaction rate per orientation.
    pub k_react: f64,
    /// Lattice side (divisible by 5 and even).
    pub side: u32,
    /// Simulated horizon; observables average over the second half.
    pub t_end: f64,
}

impl ZgbJob {
    /// Full-tier job: a production-sized lattice well inside the
    /// reactive window.
    pub fn full() -> Self {
        ZgbJob {
            y: 0.5,
            k_react: 10.0,
            side: 40,
            t_end: 25.0,
        }
    }

    /// Smoke-tier job: small and short, for CI.
    pub fn smoke() -> Self {
        ZgbJob {
            y: 0.5,
            k_react: 10.0,
            side: 20,
            t_end: 8.0,
        }
    }
}

/// Run one ZGB replica of `algorithm` and reduce to scalar observables:
/// `theta_co`, `theta_o`, `theta_vacant` (tail-mean coverages) and
/// `co2_rate` (CO₂ events / site / time over the tail window).
pub fn zgb_replica(job: &ZgbJob, algorithm: &Algorithm, seed: u64) -> Vec<(String, f64)> {
    let model = zgb_ziff(job.y, job.k_react);
    let co2_group = co2_reaction_indices(&model);
    let num_reactions = model.num_reactions();
    let sites = (job.side as usize).pow(2);
    let mut meter = RateMeter::new(num_reactions, sites, 0.5, &[&co2_group]);

    let k_total = model.total_rate();
    let mut session = Simulator::new(model)
        .dims(Dims::square(job.side))
        .seed(seed)
        .algorithm(algorithm.clone())
        .into_session()
        .expect("validation algorithms support sessions");

    // One block ≈ 0.25 time units: step-driven algorithms advance ~1/K
    // of simulated time per whole step, while one fractional-step
    // "step" is a whole window of Δt simulated time.
    let block = match algorithm {
        Algorithm::Fskmc { window, .. } => (0.25 / window).ceil().max(1.0) as u64,
        _ => (0.25 * k_total).ceil().max(1.0) as u64,
    };
    let mut co = TimeSeries::new();
    let mut o = TimeSeries::new();
    let mut vacant = TimeSeries::new();
    while session.time() < job.t_end {
        session.run_blocks(block, &mut meter);
        let cov = &session.state().coverage;
        co.push(session.time(), cov.fraction(1));
        o.push(session.time(), cov.fraction(2));
        vacant.push(session.time(), cov.fraction(0));
    }

    let tail = job.t_end * 0.5;
    let tail_mean = |s: &TimeSeries| s.after(tail).mean().unwrap_or(f64::NAN);
    let co2_rate = meter.rate_series(0).after(tail).mean().unwrap_or(0.0);
    vec![
        ("theta_co".into(), tail_mean(&co)),
        ("theta_o".into(), tail_mean(&o)),
        ("theta_vacant".into(), tail_mean(&vacant)),
        ("co2_rate".into(), co2_rate),
    ]
}

/// The lockstep-batch equivalent of `algorithm`, when the batch engine
/// supports it (NDCA and PNDCA — the step-driven CA variants whose RNG
/// consumption the engine replicates exactly). `None` routes the
/// algorithm through the single-replica path.
pub fn batch_algorithm_for(
    algorithm: &Algorithm,
    dims: Dims,
    model: &Model,
) -> Option<BatchAlgorithm> {
    match algorithm {
        Algorithm::Ndca { shuffled } => Some(BatchAlgorithm::Ndca {
            shuffled: *shuffled,
        }),
        Algorithm::Pndca {
            partition,
            selection,
        } => Some(BatchAlgorithm::Pndca {
            partition: partition.build(dims, model),
            selection: *selection,
        }),
        _ => None,
    }
}

/// Run `count` ZGB replicas seeded `base_seed..base_seed + count` through
/// the lockstep batch engine and reduce each to the same observables as
/// [`zgb_replica`] — bit-identically: slot `i` samples coverages on the
/// same block grid and meters CO₂ events in the same windows as a
/// single-replica run with seed `base_seed + i`, so every returned value
/// is `==` the single-replica one (pinned by the
/// `zgb_batch_matches_single_replicas_bit_exactly` test).
///
/// Returns `None` when `algorithm` has no lockstep equivalent.
pub fn zgb_replicas_batch(
    job: &ZgbJob,
    algorithm: &Algorithm,
    count: u64,
    base_seed: u64,
) -> Option<Vec<Vec<(String, f64)>>> {
    let model = zgb_ziff(job.y, job.k_react);
    let dims = Dims::square(job.side);
    let batch_algorithm = batch_algorithm_for(algorithm, dims, &model)?;
    let co2_group = co2_reaction_indices(&model);
    let sites = (job.side as usize).pow(2);
    let slots = BatchEnsemble::slots_for(count);
    let mut meter = BatchRateMeter::new(model.num_reactions(), sites, 0.5, &co2_group, slots);
    let block = (0.25 * model.total_rate()).ceil().max(1.0) as u64;
    let ensemble = BatchEnsemble::new(&model, dims, batch_algorithm, block, job.t_end);

    // Per slot: (θ_CO, θ_O, θ_*) series on the per-stride grid.
    let mut series = vec![[(); 3].map(|_| TimeSeries::new()); slots];
    let final_times = ensemble.run(
        count,
        base_seed,
        &mut meter,
        |sim, slot| {
            let t = sim.time(slot);
            series[slot][0].push(t, sim.coverage_fraction(slot, 1));
            series[slot][1].push(t, sim.coverage_fraction(slot, 2));
            series[slot][2].push(t, sim.coverage_fraction(slot, 0));
        },
        |sim, slot| sim.time(slot),
    );

    let tail = job.t_end * 0.5;
    let tail_mean = |s: &TimeSeries| s.after(tail).mean().unwrap_or(f64::NAN);
    Some(
        final_times
            .iter()
            .enumerate()
            .map(|(slot, &final_time)| {
                let co2_rate = meter
                    .rate_series(slot, final_time)
                    .after(tail)
                    .mean()
                    .unwrap_or(0.0);
                vec![
                    ("theta_co".into(), tail_mean(&series[slot][0])),
                    ("theta_o".into(), tail_mean(&series[slot][1])),
                    ("theta_vacant".into(), tail_mean(&series[slot][2])),
                    ("co2_rate".into(), co2_rate),
                ]
            })
            .collect(),
    )
}

/// Run one ZGB replica on the *sharded* executor (`psr-shard`): the
/// lattice tiled over `shards` domain-decomposed workers, PNDCA with
/// random chunk order on the 5-coloring, boundary state moving through
/// the halo-frame protocol. Reduces to the same observables as
/// [`zgb_replica`].
///
/// The CO₂ rate comes from the executor's per-reaction execution
/// counters instead of a per-event meter: cumulative counts are sampled
/// at block boundaries and the tail rate is events / site / time over
/// the tail window — the same expectation the reference's windowed
/// meter estimates.
pub fn zgb_replica_sharded(job: &ZgbJob, shards: u32, seed: u64) -> Vec<(String, f64)> {
    use psr_dmc::sim::SimState;
    use psr_lattice::Lattice;
    use psr_shard::{ShardGrid, ShardedPndca};

    let model = zgb_ziff(job.y, job.k_react);
    let dims = Dims::square(job.side);
    let grid = ShardGrid::for_workers(shards);
    grid.validate(dims, model.interaction_radius());
    let partition = PartitionSpec::FiveColoring.build(dims, &model);
    let co2_group = co2_reaction_indices(&model);
    let sites = (job.side as u64).pow(2) as f64;

    let block = (0.25 * model.total_rate()).ceil().max(1.0) as u64;
    let mut exec = ShardedPndca::new(&model, &partition, grid, seed)
        .with_selection(ChunkSelection::RandomOrder);
    let mut state = SimState::new(Lattice::filled(dims, 0), &model);

    let mut co = TimeSeries::new();
    let mut o = TimeSeries::new();
    let mut vacant = TimeSeries::new();
    let mut co2_cum = TimeSeries::new();
    co2_cum.push(0.0, 0.0);
    while state.time < job.t_end {
        exec.run_steps(&mut state, block, None);
        let cov = &state.coverage;
        co.push(state.time, cov.fraction(1));
        o.push(state.time, cov.fraction(2));
        vacant.push(state.time, cov.fraction(0));
        let events: u64 = co2_group
            .iter()
            .map(|&ri| exec.reaction_executions()[ri])
            .sum();
        co2_cum.push(state.time, events as f64);
    }

    let tail = job.t_end * 0.5;
    let tail_mean = |s: &TimeSeries| s.after(tail).mean().unwrap_or(f64::NAN);
    let tail_counts = co2_cum.after(tail);
    let co2_rate = if tail_counts.len() >= 2 {
        let (t, c) = (tail_counts.times(), tail_counts.values());
        let span = t[t.len() - 1] - t[0];
        (c[c.len() - 1] - c[0]) / sites / span
    } else {
        0.0
    };
    vec![
        ("theta_co".into(), tail_mean(&co)),
        ("theta_o".into(), tail_mean(&o)),
        ("theta_vacant".into(), tail_mean(&vacant)),
        ("co2_rate".into(), co2_rate),
    ]
}

/// Parameters of one Kuzovkov oscillation job.
#[derive(Clone, Copy, Debug)]
pub struct OscillationJob {
    /// Lattice side (divisible by 5 and even).
    pub side: u32,
    /// Simulated horizon; peaks are detected after the first quarter.
    pub t_end: f64,
}

impl OscillationJob {
    /// Full-tier job: long enough for ~4 oscillation periods.
    pub fn full() -> Self {
        OscillationJob {
            side: 40,
            t_end: 160.0,
        }
    }

    /// Smoke-tier job (period detection still possible, barely).
    pub fn smoke() -> Self {
        OscillationJob {
            side: 30,
            t_end: 90.0,
        }
    }
}

/// Run one Kuzovkov replica and reduce to `period`, `amplitude` (NaN
/// when undetectable — excluded from CIs upstream) and `oscillating`
/// (0/1 indicator).
pub fn oscillation_replica(
    job: &OscillationJob,
    algorithm: &Algorithm,
    seed: u64,
) -> Vec<(String, f64)> {
    let model = kuzovkov_model(KuzovkovParams::default());
    let k_total = model.total_rate();
    let mut session = Simulator::new(model)
        .dims(Dims::square(job.side))
        .seed(seed)
        .algorithm(algorithm.clone())
        .into_session()
        .expect("validation algorithms support sessions");

    let block = (0.5 * k_total).ceil().max(1.0) as u64;
    let mut co = TimeSeries::new();
    // One fractions buffer for the whole run: the 52-state Kuzovkov model
    // samples thousands of blocks per replica, and a fresh Vec per sample
    // is the kind of ensemble-loop allocation the batch engine exists to
    // avoid.
    let mut fractions = Vec::new();
    while session.time() < job.t_end {
        session.run_blocks(block, &mut psr_dmc::events::NoHook);
        session.state().coverage.fractions_into(&mut fractions);
        co.push(session.time(), co_coverage(&fractions));
    }

    // Same detector settings as the tier-1 oscillation tests: moving
    // average half-width 5 samples, 0.04 hysteresis prominence.
    let summary = detect_peaks(&co.after(job.t_end * 0.25), 5, 0.04);
    vec![
        ("period".into(), summary.period.unwrap_or(f64::NAN)),
        ("amplitude".into(), summary.amplitude.unwrap_or(f64::NAN)),
        (
            "oscillating".into(),
            if summary.is_oscillating(3, 0.03) {
                1.0
            } else {
                0.0
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zgb_replica_reports_all_observables() {
        let job = ZgbJob {
            y: 0.5,
            k_react: 5.0,
            side: 10,
            t_end: 2.0,
        };
        let (_, reference) = reference_algorithm();
        let obs = zgb_replica(&job, &reference, 3);
        let names: Vec<&str> = obs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["theta_co", "theta_o", "theta_vacant", "co2_rate"]);
        let theta: f64 = obs[..3].iter().map(|(_, v)| v).sum();
        assert!((theta - 1.0).abs() < 1e-9, "coverages must sum to 1");
        assert!(obs[3].1 >= 0.0);
    }

    #[test]
    fn zgb_replica_is_deterministic_in_the_seed() {
        let job = ZgbJob {
            y: 0.5,
            k_react: 5.0,
            side: 10,
            t_end: 1.0,
        };
        let algorithm = Algorithm::Ndca { shuffled: false };
        assert_eq!(
            zgb_replica(&job, &algorithm, 9),
            zgb_replica(&job, &algorithm, 9)
        );
    }

    #[test]
    fn every_variant_runs_a_small_zgb_replica() {
        let job = ZgbJob {
            y: 0.5,
            k_react: 5.0,
            side: 10,
            t_end: 1.0,
        };
        let all = variant_algorithms()
            .into_iter()
            .chain(deviation_algorithms())
            .chain([splitting_algorithm()]);
        for (name, algorithm) in all {
            let obs = zgb_replica(&job, &algorithm, 1);
            assert_eq!(obs.len(), 4, "{name}");
            assert!(obs.iter().all(|(_, v)| v.is_finite()), "{name}");
        }
    }

    /// The batched ZGB runner must agree with `zgb_replica` *exactly* —
    /// not statistically: same seeds, same sampling grid, same windows,
    /// bit-identical trajectories, so `==` on every observable.
    #[test]
    fn zgb_batch_matches_single_replicas_bit_exactly() {
        let job = ZgbJob {
            y: 0.5,
            k_react: 5.0,
            side: 10,
            t_end: 2.0,
        };
        let algorithms = [
            Algorithm::Ndca { shuffled: false },
            Algorithm::Ndca { shuffled: true },
            Algorithm::Pndca {
                partition: PartitionSpec::FiveColoring,
                selection: ChunkSelection::RandomOrder,
            },
        ];
        for algorithm in algorithms {
            let rows = zgb_replicas_batch(&job, &algorithm, 10, 400).expect("lockstep-capable");
            assert_eq!(rows.len(), 10);
            for (i, row) in rows.iter().enumerate() {
                let single = zgb_replica(&job, &algorithm, 400 + i as u64);
                assert_eq!(row, &single, "replica {i} of {algorithm:?}");
            }
        }
    }

    #[test]
    fn sharded_replica_reports_all_observables_deterministically() {
        let job = ZgbJob {
            y: 0.5,
            k_react: 5.0,
            side: 10,
            t_end: 2.0,
        };
        let obs = zgb_replica_sharded(&job, 4, 3);
        let names: Vec<&str> = obs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["theta_co", "theta_o", "theta_vacant", "co2_rate"]);
        let theta: f64 = obs[..3].iter().map(|(_, v)| v).sum();
        assert!((theta - 1.0).abs() < 1e-9, "coverages must sum to 1");
        assert!(obs[3].1 >= 0.0);
        assert_eq!(obs, zgb_replica_sharded(&job, 4, 3), "seed determinism");
    }

    #[test]
    fn non_lockstep_algorithms_fall_back() {
        let job = ZgbJob {
            y: 0.5,
            k_react: 5.0,
            side: 10,
            t_end: 1.0,
        };
        for algorithm in [Algorithm::Rsm, deviation_algorithms()[0].1.clone()] {
            assert!(zgb_replicas_batch(&job, &algorithm, 2, 1).is_none());
        }
    }

    #[test]
    fn oscillation_replica_reports_indicator() {
        // Far too short to oscillate — the point is the observable
        // contract: period/amplitude NaN, indicator 0.
        let job = OscillationJob {
            side: 10,
            t_end: 3.0,
        };
        let (_, reference) = reference_algorithm();
        let obs = oscillation_replica(&job, &reference, 2);
        let names: Vec<&str> = obs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["period", "amplitude", "oscillating"]);
        assert_eq!(obs[2].1, 0.0);
    }
}
