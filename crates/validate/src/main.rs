//! `psr-validate` — statistical validation harness CLI.
//!
//! ```text
//! psr-validate [options]
//!
//! options:
//!   --smoke             small/fast budgets; writes VALIDATE_smoke.json
//!   --tier T            run only tier T (repeatable):
//!                       exact | segers | statistical | kink
//!   --out FILE          override the JSON output path
//!   --seed N            harness master seed (default 1)
//!   --workers N         replica worker threads (default: available cores)
//!   --quiet             suppress the per-check summary
//! ```
//!
//! Exit codes: `0` all checks passed, `1` usage error, `2` at least one
//! check failed.

use psr_validate::exact::{exact_checks, ExactConfig};
use psr_validate::kink::{kink_checks, KinkConfig};
use psr_validate::segers::{segers_checks, SegersConfig};
use psr_validate::statistical::{statistical_checks, StatisticalConfig};
use psr_validate::Report;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: psr-validate [--smoke] [--tier exact|segers|statistical|kink] \
[--out FILE] [--seed N] [--workers N] [--quiet]";

const TIERS: [&str; 4] = ["exact", "segers", "statistical", "kink"];

struct Cli {
    smoke: bool,
    tiers: Vec<String>,
    out: Option<PathBuf>,
    seed: u64,
    workers: usize,
    quiet: bool,
}

fn parse_cli(mut args: std::env::Args) -> Result<Cli, String> {
    let _ = args.next(); // program name
    let mut cli = Cli {
        smoke: false,
        tiers: Vec::new(),
        out: None,
        seed: 1,
        workers: std::thread::available_parallelism().map_or(2, usize::from),
        quiet: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--smoke" => cli.smoke = true,
            "--quiet" => cli.quiet = true,
            "--tier" => {
                let tier = value("--tier")?;
                if !TIERS.contains(&tier.as_str()) {
                    return Err(format!("unknown tier {tier:?}\n{USAGE}"));
                }
                cli.tiers.push(tier);
            }
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--workers" => {
                cli.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if cli.workers == 0 {
                    return Err("--workers must be positive".into());
                }
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if cli.tiers.is_empty() {
        cli.tiers = TIERS.iter().map(|t| t.to_string()).collect();
    }
    Ok(cli)
}

/// Default output path: `VALIDATE.json` (or `VALIDATE_smoke.json` for
/// `--smoke`, so a CI smoke run never clobbers the committed full
/// report) at the workspace root.
fn default_out(smoke: bool) -> PathBuf {
    let name = if smoke {
        "VALIDATE_smoke.json"
    } else {
        "VALIDATE.json"
    };
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(name)
}

fn run(cli: &Cli) -> Result<Report, String> {
    let mut report = Report::new();
    for tier in &cli.tiers {
        if !cli.quiet {
            eprintln!("validate: running tier {tier}...");
        }
        let checks = match tier.as_str() {
            "exact" => {
                let cfg = if cli.smoke {
                    ExactConfig::smoke(cli.seed, cli.workers)
                } else {
                    ExactConfig::full(cli.seed, cli.workers)
                };
                exact_checks(&cfg)
            }
            "segers" => {
                let cfg = if cli.smoke {
                    SegersConfig::smoke(cli.seed)
                } else {
                    SegersConfig::full(cli.seed)
                };
                segers_checks(&cfg)
            }
            "statistical" => {
                let cfg = if cli.smoke {
                    StatisticalConfig::smoke(cli.seed, cli.workers)
                } else {
                    StatisticalConfig::full(cli.seed, cli.workers)
                };
                statistical_checks(&cfg)
            }
            "kink" => {
                let cfg = if cli.smoke {
                    KinkConfig::smoke(cli.seed)
                } else {
                    KinkConfig::full(cli.seed)
                };
                kink_checks(&cfg)
            }
            other => return Err(format!("unknown tier {other:?}")),
        };
        report.extend(checks);
    }
    Ok(report)
}

fn main() -> ExitCode {
    let cli = match parse_cli(std::env::args()) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };
    let report = match run(&cli) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("validate: {e}");
            return ExitCode::from(1);
        }
    };
    if !cli.quiet {
        print!("{}", report.render_summary());
    }
    let out = cli.out.clone().unwrap_or_else(|| default_out(cli.smoke));
    let json = report.to_json(cli.smoke, cli.seed);
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("validate: writing {}: {e}", out.display());
        return ExitCode::from(1);
    }
    if !cli.quiet {
        eprintln!("validate: wrote {}", out.display());
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
