//! Percentile-bootstrap confidence intervals for replica means.
//!
//! Replica observables (tail coverages, turnover rates, oscillation
//! periods) have unknown, often skewed distributions — the poisoning
//! transitions make coverage bimodal near the kinks. The percentile
//! bootstrap needs no normality assumption: resample the replicas with
//! replacement, take the mean of each resample, and read the CI off the
//! empirical quantiles of those means. Resampling uses the workspace
//! [`SimRng`] so every CI is reproducible from the harness seed.

use psr_rng::{rng_from_seed, SimRng};

/// A bootstrap confidence interval for the mean of a replica sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapCi {
    /// Plain sample mean.
    pub mean: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
    /// Confidence level the bounds were taken at.
    pub level: f64,
}

impl BootstrapCi {
    /// Half the CI width — the "precision" the sequential sampler drives
    /// below its target.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// True if `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        self.lo <= value && value <= self.hi
    }
}

fn resample_mean(samples: &[f64], rng: &mut SimRng) -> f64 {
    let n = samples.len();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += samples[rng.index(n)];
    }
    acc / n as f64
}

/// Percentile-bootstrap CI of the mean of `samples`.
///
/// `resamples` bootstrap means are drawn with a dedicated RNG from
/// `seed`; the CI is the `(1±level)/2` empirical quantile pair.
///
/// # Panics
///
/// Panics with fewer than 2 samples, fewer than 10 resamples, or a
/// level outside `(0, 1)`.
pub fn bootstrap_mean_ci(samples: &[f64], resamples: usize, level: f64, seed: u64) -> BootstrapCi {
    assert!(samples.len() >= 2, "need at least 2 samples to bootstrap");
    assert!(resamples >= 10, "need at least 10 resamples");
    assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
    let mut rng = rng_from_seed(seed);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| resample_mean(samples, &mut rng))
        .collect();
    means.sort_by(f64::total_cmp);
    let quantile = |q: f64| {
        let idx = (q * (resamples - 1) as f64).round() as usize;
        means[idx.min(resamples - 1)]
    };
    BootstrapCi {
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
        lo: quantile((1.0 - level) / 2.0),
        hi: quantile((1.0 + level) / 2.0),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_brackets_the_mean_of_a_known_sample() {
        // 0..100 has mean 49.5; the 95% CI must contain it and be
        // roughly ±2·se = ±5.8 wide.
        let samples: Vec<f64> = (0..100).map(f64::from).collect();
        let ci = bootstrap_mean_ci(&samples, 1000, 0.95, 7);
        assert!((ci.mean - 49.5).abs() < 1e-9);
        assert!(ci.contains(49.5), "CI [{}, {}]", ci.lo, ci.hi);
        assert!(ci.half_width() > 3.0 && ci.half_width() < 9.0);
    }

    #[test]
    fn ci_is_reproducible_from_the_seed() {
        let samples: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let a = bootstrap_mean_ci(&samples, 500, 0.9, 11);
        let b = bootstrap_mean_ci(&samples, 500, 0.9, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn more_replicas_tighten_the_interval() {
        let small: Vec<f64> = (0..20).map(|i| f64::from(i % 7)).collect();
        let large: Vec<f64> = (0..500).map(|i| f64::from(i % 7)).collect();
        let wide = bootstrap_mean_ci(&small, 400, 0.95, 3);
        let tight = bootstrap_mean_ci(&large, 400, 0.95, 3);
        assert!(tight.half_width() < wide.half_width());
    }

    #[test]
    fn constant_samples_give_a_degenerate_interval() {
        let samples = vec![0.25; 40];
        let ci = bootstrap_mean_ci(&samples, 200, 0.95, 1);
        assert_eq!(ci.lo, 0.25);
        assert_eq!(ci.hi, 0.25);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn single_sample_panics() {
        bootstrap_mean_ci(&[1.0], 100, 0.95, 0);
    }
}
