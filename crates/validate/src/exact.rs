//! Exact cross-checks against the integrated Master Equation.
//!
//! On a 2×2 ZGB torus the Master Equation (81 states) is integrable to
//! machine precision, so the stochastic algorithms can be held to the
//! *distribution* it predicts, not just a mean:
//!
//! - RSM/VSSM/FRM replicas are binned by their final `(n_CO, n_O)`
//!   occupation and chi-square-tested against the exact category
//!   probabilities (small-expectation categories merged);
//! - every CA variant's replica-mean CO and O coverage is z-scored
//!   against the exact expectation — the CA family discretises time, so
//!   its per-replica *distribution* at a fixed clock differs slightly,
//!   but its coverages must still land on the ME curve;
//! - a power control verifies the chi-square would reject a wrong
//!   distribution (the ME at a different time), so a pass is evidence,
//!   not a vacuous acceptance.

use crate::verdict::Check;
use psr_core::{Algorithm, PartitionSpec, Simulator};
use psr_dmc::master_equation::MasterEquation;
use psr_lattice::{Dims, Lattice};
use psr_model::library::zgb::zgb_ziff;
use psr_model::Model;
use psr_parallel::run_replicas;
use psr_stats::chi_square_counts;
use std::collections::BTreeMap;

const TIER: &str = "exact";

/// Budget of the exact tier.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Replicas per algorithm.
    pub replicas: u64,
    /// Worker threads.
    pub workers: usize,
    /// Base seed; each algorithm offsets it differently.
    pub base_seed: u64,
    /// Chi-square / z-test significance level.
    pub alpha: f64,
}

impl ExactConfig {
    /// Full-tier budget.
    pub fn full(base_seed: u64, workers: usize) -> Self {
        ExactConfig {
            replicas: 600,
            workers,
            base_seed,
            alpha: 0.01,
        }
    }

    /// Smoke-tier budget.
    pub fn smoke(base_seed: u64, workers: usize) -> Self {
        ExactConfig {
            replicas: 200,
            workers,
            base_seed,
            alpha: 0.01,
        }
    }
}

/// The tiny ZGB instance: y = 0.5, k_react = 2 on a 2×2 torus, from
/// the empty surface to t = 1.5 (mid-transient, so the distribution is
/// genuinely spread over many categories).
fn setup() -> (Model, Dims, f64) {
    (zgb_ziff(0.5, 2.0), Dims::square(2), 1.5)
}

fn integrate_me(model: &Model, dims: Dims, t_end: f64) -> MasterEquation {
    let mut me = MasterEquation::new(model, &Lattice::filled(dims, 0));
    let steps = (t_end / 0.01).round() as u64;
    for _ in 0..steps {
        me.rk4_step(0.01);
    }
    me
}

/// Bin index of a lattice: occupation counts `(n_CO, n_O)`.
fn category(lattice: &Lattice) -> (usize, usize) {
    (lattice.count(1), lattice.count(2))
}

/// Exact category probabilities from the ME distribution.
fn me_category_probs(me: &MasterEquation, dims: Dims) -> BTreeMap<(usize, usize), f64> {
    let mut probs = BTreeMap::new();
    let mut scratch = Lattice::filled(dims, 0);
    for (state, &p) in me.probabilities().iter().enumerate() {
        if p <= 0.0 {
            continue;
        }
        me.decode_state(state, &mut scratch);
        *probs.entry(category(&scratch)).or_insert(0.0) += p;
    }
    probs
}

/// Merge categories whose expected count under `replicas` would fall
/// below 5 (the usual chi-square validity rule) into a trailing
/// "other" bucket. Returns per-category `(expected, observed)` pairs.
fn merged_counts(
    probs: &BTreeMap<(usize, usize), f64>,
    observed: &BTreeMap<(usize, usize), u64>,
    replicas: u64,
) -> (Vec<f64>, Vec<u64>) {
    let mut expected = Vec::new();
    let mut counts = Vec::new();
    let mut other_expected = 0.0;
    let mut other_count = 0u64;
    for (cat, &p) in probs {
        let e = p * replicas as f64;
        let c = observed.get(cat).copied().unwrap_or(0);
        if e >= 5.0 {
            expected.push(e);
            counts.push(c);
        } else {
            other_expected += e;
            other_count += c;
        }
    }
    // Replicas landing in categories of ME-probability ~0 (possible
    // only through a simulator bug) belong to "other" too.
    for (cat, &c) in observed {
        if !probs.contains_key(cat) {
            other_count += c;
        }
    }
    if other_expected > 0.0 {
        expected.push(other_expected);
        counts.push(other_count);
    }
    (expected, counts)
}

fn final_lattice(
    model: &Model,
    dims: Dims,
    algorithm: &Algorithm,
    t_end: f64,
    seed: u64,
) -> Lattice {
    Simulator::new(model.clone())
        .dims(dims)
        .seed(seed)
        .algorithm(algorithm.clone())
        .sample_dt(t_end)
        .run_until(t_end)
        .state()
        .lattice
        .clone()
}

fn observed_categories(
    model: &Model,
    dims: Dims,
    algorithm: &Algorithm,
    t_end: f64,
    cfg: &ExactConfig,
    offset: u64,
) -> BTreeMap<(usize, usize), u64> {
    let lattices = run_replicas(cfg.replicas, cfg.workers, |i| {
        final_lattice(
            model,
            dims,
            algorithm,
            t_end,
            cfg.base_seed + offset * 1_000_000 + i,
        )
    });
    let mut observed = BTreeMap::new();
    for l in &lattices {
        *observed.entry(category(l)).or_insert(0u64) += 1;
    }
    observed
}

/// The DMC algorithms held to the full ME distribution.
fn dmc_algorithms() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("rsm", Algorithm::Rsm),
        ("vssm", Algorithm::Vssm),
        ("frm", Algorithm::Frm),
    ]
}

/// The CA variants held to the ME mean coverages. The 2×2 torus rules
/// out the five-coloring, so the partitioned variants use the greedy
/// conflict-graph partition. T-PNDCA is deliberately absent: its
/// per-sweep type correlation spans a checkerboard chunk *plus* the
/// pair-reaction halo, which on a 2×2 torus is the whole lattice — an
/// O(1) small-lattice artifact, not a kinetics bug. Its accuracy gate
/// is the production-size statistical tier (and Segers covers it at
/// the sweep level).
fn ca_algorithms() -> Vec<(&'static str, Algorithm)> {
    use psr_ca::lpndca::ChunkVisit;
    use psr_ca::pndca::ChunkSelection;
    vec![
        ("ndca", Algorithm::Ndca { shuffled: false }),
        ("ndca-shuffled", Algorithm::Ndca { shuffled: true }),
        (
            "pndca",
            Algorithm::Pndca {
                partition: PartitionSpec::Greedy,
                selection: ChunkSelection::RandomOrder,
            },
        ),
        (
            "lpndca",
            Algorithm::LPndca {
                partition: PartitionSpec::Greedy,
                l: 1,
                visit: ChunkVisit::SizeWeighted,
            },
        ),
    ]
}

/// Run the exact tier and return one [`Check`] per gate.
pub fn exact_checks(cfg: &ExactConfig) -> Vec<Check> {
    let (model, dims, t_end) = setup();
    let me = integrate_me(&model, dims, t_end);
    let probs = me_category_probs(&me, dims);
    let mut checks = Vec::new();

    // Gate 0: the integrator itself conserves probability.
    let total = me.total_probability();
    checks.push(Check::new(
        TIER,
        "me-total-probability",
        (total - 1.0).abs() < 1e-6,
        format!("sum P = {total:.12} after RK4 to t = {t_end}"),
    ));

    // Gate 1: DMC final-state distributions match the ME (chi-square).
    for (offset, (name, algorithm)) in dmc_algorithms().into_iter().enumerate() {
        let observed = observed_categories(&model, dims, &algorithm, t_end, cfg, offset as u64);
        let (expected, counts) = merged_counts(&probs, &observed, cfg.replicas);
        let chi2 = chi_square_counts(&counts, &expected);
        checks.push(
            Check::new(
                TIER,
                format!("distribution-{name}"),
                chi2.accepts(cfg.alpha),
                format!(
                    "chi2 = {:.2} (df {}), p = {:.4} over {} categories, {} replicas",
                    chi2.statistic,
                    chi2.df,
                    chi2.p_value,
                    counts.len(),
                    cfg.replicas
                ),
            )
            .metric("chi2", chi2.statistic)
            .metric("p_value", chi2.p_value),
        );
    }

    // Gate 2: power control — the same test must reject the ME
    // distribution of an earlier time (t/3), or the acceptances above
    // mean nothing.
    {
        let wrong = integrate_me(&model, dims, t_end / 3.0);
        let wrong_probs = me_category_probs(&wrong, dims);
        let observed = observed_categories(&model, dims, &Algorithm::Rsm, t_end, cfg, 0);
        let (expected, counts) = merged_counts(&wrong_probs, &observed, cfg.replicas);
        let chi2 = chi_square_counts(&counts, &expected);
        checks.push(
            Check::new(
                TIER,
                "distribution-power-control",
                !chi2.accepts(cfg.alpha),
                format!(
                    "RSM at t = {t_end} vs ME at t = {:.2}: chi2 = {:.2}, p = {:.4} (must reject)",
                    t_end / 3.0,
                    chi2.statistic,
                    chi2.p_value
                ),
            )
            .metric("chi2", chi2.statistic)
            .metric("p_value", chi2.p_value),
        );
    }

    // Gate 3: CA variant mean coverages sit on the ME expectation.
    let sites = dims.sites() as f64;
    for (offset, (name, algorithm)) in ca_algorithms().into_iter().enumerate() {
        let lattices = run_replicas(cfg.replicas, cfg.workers, |i| {
            final_lattice(
                &model,
                dims,
                &algorithm,
                t_end,
                cfg.base_seed + (10 + offset as u64) * 1_000_000 + i,
            )
        });
        let mut pass = true;
        let mut details = Vec::new();
        let mut check = Check::new(TIER, format!("coverage-{name}"), true, String::new());
        for (species, label) in [(1u8, "CO"), (2u8, "O")] {
            let exact = me.expected_coverage(species);
            let samples: Vec<f64> = lattices
                .iter()
                .map(|l| l.count(species) as f64 / sites)
                .collect();
            let n = samples.len() as f64;
            let mean = samples.iter().sum::<f64>() / n;
            let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
            let se = (var / n).sqrt().max(1e-12);
            let z = (mean - exact) / se;
            // 4 sigma two-sided: false-alarm ~6e-5 per gate, while a
            // genuine kinetics bug (coverage off by ≳0.02) shows up at
            // z ≳ 15 with this replica budget.
            pass &= z.abs() < 4.0;
            details.push(format!(
                "θ_{label} = {mean:.4} vs exact {exact:.4} (z = {z:+.2})"
            ));
            check = check.metric(format!("z_{label}"), z);
        }
        check.pass = pass;
        check.detail = details.join("; ");
        checks.push(check);
    }

    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_probabilities_sum_to_one() {
        let (model, dims, _) = setup();
        let me = integrate_me(&model, dims, 0.2);
        let probs = me_category_probs(&me, dims);
        let total: f64 = probs.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Impossible occupations never appear: n_CO + n_O <= 4.
        assert!(probs.keys().all(|&(c, o)| c + o <= 4));
    }

    #[test]
    fn merging_respects_totals_and_minimum_expectation() {
        let (model, dims, t_end) = setup();
        let me = integrate_me(&model, dims, t_end);
        let probs = me_category_probs(&me, dims);
        let cfg = ExactConfig::smoke(5, 2);
        let observed = observed_categories(&model, dims, &Algorithm::Rsm, t_end, &cfg, 0);
        let (expected, counts) = merged_counts(&probs, &observed, cfg.replicas);
        assert!(expected.len() >= 2, "need at least two categories");
        assert_eq!(counts.iter().sum::<u64>(), cfg.replicas);
        let total_expected: f64 = expected.iter().sum();
        assert!((total_expected - cfg.replicas as f64).abs() < 1e-6);
        // All but the merged tail meet the rule of five.
        for &e in &expected[..expected.len() - 1] {
            assert!(e >= 5.0);
        }
    }

    #[test]
    fn rsm_distribution_check_passes_on_a_small_budget() {
        let cfg = ExactConfig {
            replicas: 120,
            workers: 2,
            base_seed: 42,
            alpha: 0.01,
        };
        let checks = exact_checks(&cfg);
        let rsm = checks
            .iter()
            .find(|c| c.name == "distribution-rsm")
            .expect("rsm check present");
        assert!(rsm.pass, "{}", rsm.detail);
        let power = checks
            .iter()
            .find(|c| c.name == "distribution-power-control")
            .expect("power control present");
        assert!(power.pass, "{}", power.detail);
    }
}
