//! ZGB phase-boundary reproduction (Fig 2 of Ziff, Gulari & Barshad).
//!
//! The ZGB model has two kinetic phase transitions in the CO gas-phase
//! fraction `y`: a continuous O-poisoning transition at `y₁ ≈ 0.3874`
//! and a discontinuous CO-poisoning transition at `y₂ ≈ 0.5256`. This
//! module locates both by bisection on a *classifier*: run the DMC
//! reference (tree-indexed VSSM — event-driven, so the near-infinite
//! reaction rate costs nothing) to a horizon and label the surface
//! O-poisoned, CO-poisoned or reactive by its final coverages, with a
//! majority vote over seeds to tame the stochastic boundary.
//!
//! Finite lattices and horizons blur both transitions (metastability
//! near `y₂` especially), so the gate tolerance is an input calibrated
//! per lattice size, not a hard-coded universal constant.

use crate::verdict::Check;
use psr_core::{Algorithm, Simulator};
use psr_lattice::Dims;
use psr_model::library::zgb::zgb_ziff;

const TIER: &str = "kink";

/// Published kink locations (Ziff, Gulari & Barshad 1986).
pub const Y1_PUBLISHED: f64 = 0.3874;
/// CO-poisoning kink.
pub const Y2_PUBLISHED: f64 = 0.5256;

/// Phase labels of a classified run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Surface ended (almost) all oxygen.
    OPoisoned,
    /// Surface stayed catalytically active.
    Reactive,
    /// Surface ended (almost) all CO.
    CoPoisoned,
}

/// Budget and geometry of the kink search.
#[derive(Clone, Copy, Debug)]
pub struct KinkConfig {
    /// Lattice side.
    pub side: u32,
    /// Horizon per classification run.
    pub t_end: f64,
    /// CO+O reaction rate (large ≈ the instantaneous ZGB reaction).
    pub k_react: f64,
    /// Seeds per majority vote.
    pub votes: u64,
    /// Bisection iterations per kink.
    pub iterations: u32,
    /// Gate: |found − published| must be below this.
    pub tolerance: f64,
    /// Base seed.
    pub base_seed: u64,
}

impl KinkConfig {
    /// Full-tier search: resolves both kinks to ±0.01 of the published
    /// values on a 40×40 lattice.
    pub fn full(base_seed: u64) -> Self {
        KinkConfig {
            side: 40,
            t_end: 300.0,
            k_react: 100.0,
            votes: 5,
            iterations: 12,
            tolerance: 0.01,
            base_seed,
        }
    }

    /// Smoke-tier search: coarse brackets only, loose gate.
    pub fn smoke(base_seed: u64) -> Self {
        KinkConfig {
            side: 20,
            t_end: 80.0,
            k_react: 50.0,
            votes: 3,
            iterations: 6,
            tolerance: 0.04,
            base_seed,
        }
    }
}

/// Classify one run at CO fraction `y`.
pub fn classify(cfg: &KinkConfig, y: f64, seed: u64) -> Phase {
    let out = Simulator::new(zgb_ziff(y, cfg.k_react))
        .dims(Dims::square(cfg.side))
        .seed(seed)
        .algorithm(Algorithm::VssmTree)
        .sample_dt(cfg.t_end)
        .run_until(cfg.t_end);
    let cov = &out.state().coverage;
    if cov.fraction(2) >= 0.95 {
        Phase::OPoisoned
    } else if cov.fraction(1) >= 0.95 {
        Phase::CoPoisoned
    } else {
        Phase::Reactive
    }
}

/// Majority phase over `cfg.votes` seeds (ties resolved toward the
/// poisoned label, which only shifts the boundary by less than one
/// bisection step).
pub fn majority(cfg: &KinkConfig, y: f64) -> Phase {
    let mut counts = [0u64; 3];
    for v in 0..cfg.votes {
        let phase = classify(cfg, y, cfg.base_seed + v * 104_729 + (y * 1e6) as u64);
        counts[match phase {
            Phase::OPoisoned => 0,
            Phase::Reactive => 1,
            Phase::CoPoisoned => 2,
        }] += 1;
    }
    if counts[1] > counts[0] && counts[1] > counts[2] {
        Phase::Reactive
    } else if counts[0] >= counts[2] {
        Phase::OPoisoned
    } else {
        Phase::CoPoisoned
    }
}

/// Bisect a phase boundary inside `[lo, hi]`: `lo` must classify as
/// `lo_phase` and `hi` as `hi_phase`, or an error names the failing
/// endpoint (the physics is wrong, not the search).
fn bisect(
    cfg: &KinkConfig,
    mut lo: f64,
    mut hi: f64,
    lo_phase: Phase,
    hi_phase: Phase,
) -> Result<f64, String> {
    let at_lo = majority(cfg, lo);
    if at_lo != lo_phase {
        return Err(format!(
            "expected {lo_phase:?} at y = {lo}, found {at_lo:?}"
        ));
    }
    let at_hi = majority(cfg, hi);
    if at_hi != hi_phase {
        return Err(format!(
            "expected {hi_phase:?} at y = {hi}, found {at_hi:?}"
        ));
    }
    for _ in 0..cfg.iterations {
        let mid = 0.5 * (lo + hi);
        if majority(cfg, mid) == lo_phase {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Locate both kinks. `y₁` is bracketed by `[0.33, 0.45]`
/// (O-poisoned → reactive), `y₂` by `[0.48, 0.60]`
/// (reactive → CO-poisoned).
pub fn find_kinks(cfg: &KinkConfig) -> Result<(f64, f64), String> {
    let y1 = bisect(cfg, 0.33, 0.45, Phase::OPoisoned, Phase::Reactive)?;
    let y2 = bisect(cfg, 0.48, 0.60, Phase::Reactive, Phase::CoPoisoned)?;
    Ok((y1, y2))
}

/// Run the kink tier and return its checks.
pub fn kink_checks(cfg: &KinkConfig) -> Vec<Check> {
    match find_kinks(cfg) {
        Ok((y1, y2)) => vec![
            Check::new(
                TIER,
                "zgb-y1",
                (y1 - Y1_PUBLISHED).abs() <= cfg.tolerance,
                format!(
                    "found y1 = {y1:.4}, published {Y1_PUBLISHED} (tolerance ±{})",
                    cfg.tolerance
                ),
            )
            .metric("y1", y1)
            .metric("error", y1 - Y1_PUBLISHED),
            Check::new(
                TIER,
                "zgb-y2",
                (y2 - Y2_PUBLISHED).abs() <= cfg.tolerance,
                format!(
                    "found y2 = {y2:.4}, published {Y2_PUBLISHED} (tolerance ±{})",
                    cfg.tolerance
                ),
            )
            .metric("y2", y2)
            .metric("error", y2 - Y2_PUBLISHED),
        ],
        Err(e) => vec![Check::new(
            TIER,
            "zgb-kink-brackets",
            false,
            format!("bisection bracket failed: {e}"),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> KinkConfig {
        KinkConfig {
            side: 12,
            t_end: 30.0,
            k_react: 50.0,
            votes: 1,
            iterations: 4,
            tolerance: 0.1,
            base_seed: 7,
        }
    }

    #[test]
    fn extreme_compositions_poison_as_expected() {
        let cfg = tiny();
        // y = 0.05: oxygen floods the surface. y = 0.95: CO does.
        assert_eq!(classify(&cfg, 0.05, 1), Phase::OPoisoned);
        assert_eq!(classify(&cfg, 0.95, 1), Phase::CoPoisoned);
    }

    #[test]
    fn mid_window_composition_stays_reactive() {
        let cfg = tiny();
        assert_eq!(majority(&cfg, 0.45), Phase::Reactive);
    }

    #[test]
    fn bisect_rejects_a_bad_bracket() {
        let cfg = tiny();
        let err = bisect(&cfg, 0.45, 0.05, Phase::OPoisoned, Phase::Reactive)
            .expect_err("0.45 is reactive, not O-poisoned");
        assert!(err.contains("expected OPoisoned"));
    }
}
