//! The threaded PNDCA executor.
//!
//! One PNDCA step sweeps the chunks of the partition; within a chunk every
//! site gets one trial. Because same-chunk neighborhoods are disjoint
//! (partition restriction, verified on construction), the chunk sweep is
//! embarrassingly parallel: the chunk's site list is split into one slice
//! per worker and the slices run concurrently over a [`SharedCells`] view
//! of the lattice. A barrier (the end of the rayon scope) separates chunks,
//! mirroring the paper's "updates in the same partition can be done
//! simultaneously".
//!
//! Determinism: every *trial* gets its own RNG stream, keyed by
//! `(step, sweep position, site)` and derived from the master seed. Within
//! one chunk sweep the trials are order-independent (disjoint
//! neighborhoods) and their draws are keyed by the site, not the executing
//! thread — so results are a pure function of `(seed, partition)` alone,
//! regardless of thread count, OS scheduling, or how a sharded executor
//! splits the same partition across domains (psr-shard pins this with a
//! differential test).

use rayon::prelude::*;

use crate::shared::{Claim, ClaimTable, SharedCells};
use psr_ca::partition::Partition;
use psr_ca::pndca::ChunkSelection;
use psr_ca::propensity::{draw_weighted, ChunkPropensityCache};
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::RunStats;
use psr_dmc::sim::SimState;
use psr_lattice::{Change, Site};
use psr_model::{Model, ReactionType};
use psr_rng::{AliasTable, Pcg32, StreamFactory};

/// Outcome of one slice sweep.
struct SliceOutcome {
    trials: u64,
    executed: u64,
    /// Net coverage change per species id.
    deltas: Vec<i64>,
    conflicts: u64,
    /// Journal of `(site, old, new)` writes, recorded only when the step
    /// needs them (weighted selection feeds them to the propensity cache at
    /// the chunk barrier); empty otherwise.
    changes: Vec<Change>,
}

/// Threaded PNDCA over a conflict-free partition.
pub struct ParallelPndca<'m, 'p> {
    model: &'m Model,
    partition: &'p Partition,
    pool: rayon::ThreadPool,
    threads: usize,
    alias: AliasTable,
    factory: StreamFactory,
    checked: bool,
    claims: Option<ClaimTable>,
    step: u64,
    conflicts: u64,
    selection: ChunkSelection,
    /// Incremental chunk weights for `WeightedByRates`, built lazily.
    cache: Option<ChunkPropensityCache>,
}

impl<'m, 'p> ParallelPndca<'m, 'p> {
    /// Build an executor with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if the partition violates the non-overlap restriction for
    /// `model` (this is the safety precondition of the unsafe shared-memory
    /// sweep, so it is enforced in all build profiles), if `threads == 0`,
    /// or if the rayon pool cannot be created.
    pub fn new(model: &'m Model, partition: &'p Partition, threads: usize, seed: u64) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(
            partition.is_valid_for(model),
            "partition violates the non-overlap restriction; \
             parallel execution would race"
        );
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build thread pool");
        ParallelPndca {
            model,
            partition,
            pool,
            threads,
            alias: AliasTable::new(&model.rate_weights()),
            factory: StreamFactory::new(seed),
            checked: false,
            claims: None,
            step: 0,
            conflicts: 0,
            selection: ChunkSelection::InOrder,
            cache: None,
        }
    }

    /// Build an executor that *skips* the partition validation — only for
    /// failure-injection tests of the claim table.
    ///
    /// # Safety
    ///
    /// Running an invalid partition unchecked is a data race; callers must
    /// enable checked mode and treat the lattice as poisoned afterwards.
    pub unsafe fn new_unvalidated(
        model: &'m Model,
        partition: &'p Partition,
        threads: usize,
        seed: u64,
    ) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build thread pool");
        ParallelPndca {
            model,
            partition,
            pool,
            threads,
            alias: AliasTable::new(&model.rate_weights()),
            factory: StreamFactory::new(seed),
            checked: false,
            claims: None,
            step: 0,
            conflicts: 0,
            selection: ChunkSelection::InOrder,
            cache: None,
        }
    }

    /// Enable the atomic claim table that dynamically verifies neighborhood
    /// disjointness (slower; for tests and debugging).
    pub fn with_conflict_checking(mut self, lattice_sites: usize) -> Self {
        self.checked = true;
        self.claims = Some(ClaimTable::new(lattice_sites));
        self
    }

    /// Shuffle chunk order each step (PNDCA strategy 2) instead of sweeping
    /// in order. Shorthand for
    /// [`with_selection`](Self::with_selection)`(ChunkSelection::RandomOrder)`.
    pub fn with_random_chunk_order(mut self, yes: bool) -> Self {
        self.selection = if yes {
            ChunkSelection::RandomOrder
        } else {
            ChunkSelection::InOrder
        };
        self
    }

    /// Select any of the four §5 chunk-selection strategies. Every strategy
    /// keeps the executor deterministic: the chunk sequence is driven by
    /// dedicated per-step RNG streams and the trial streams are keyed by
    /// sweep *position* and site, so results remain a pure function of
    /// `(seed, partition)` even when weighted selection repeats a chunk
    /// within one step.
    pub fn with_selection(mut self, selection: ChunkSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Conflicts detected by the claim table so far (0 unless the partition
    /// was invalid and validation was bypassed).
    pub fn conflicts_detected(&self) -> u64 {
        self.conflicts
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Completed steps.
    pub fn steps_done(&self) -> u64 {
        self.step
    }

    /// Build (or refresh) the propensity cache for the current lattice.
    fn take_fresh_cache(&mut self, state: &SimState) -> ChunkPropensityCache {
        let mut cache = self.cache.take().unwrap_or_else(|| {
            let mut c = ChunkPropensityCache::new(self.model, self.partition, &state.lattice);
            c.note_epoch(state.mutation_epoch());
            c
        });
        cache.ensure_fresh(
            self.model,
            self.partition,
            &state.lattice,
            state.mutation_epoch(),
        );
        cache
    }

    /// Run `steps` parallel PNDCA steps.
    pub fn run_steps(
        &mut self,
        state: &mut SimState,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let num_species = self.model.species().len();
        let k_total = self.model.total_rate();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        for _ in 0..steps {
            let m = self.partition.num_chunks();
            match self.selection {
                ChunkSelection::InOrder
                | ChunkSelection::RandomOrder
                | ChunkSelection::RandomWithReplacement => {
                    let order: Vec<usize> = match self.selection {
                        ChunkSelection::InOrder => (0..m).collect(),
                        ChunkSelection::RandomOrder => {
                            let mut order: Vec<usize> = (0..m).collect();
                            let mut rng = self.factory.stream(shuffle_stream_id(self.step));
                            psr_rng::sample::shuffle(&mut rng, &mut order);
                            order
                        }
                        _ => {
                            let mut rng = self.factory.stream(draw_stream_id(self.step));
                            (0..m).map(|_| rng.index(m)).collect()
                        }
                    };
                    for (position, &chunk_idx) in order.iter().enumerate() {
                        let outcome = self.sweep_chunk_parallel(
                            state,
                            chunk_idx,
                            position,
                            num_species,
                            false,
                        );
                        stats.trials += outcome.trials;
                        stats.executed += outcome.executed;
                        self.conflicts += outcome.conflicts;
                        apply_coverage_deltas(&mut state.coverage, &outcome.deltas);
                        if let Some(claims) = &self.claims {
                            claims.clear();
                        }
                    }
                }
                ChunkSelection::WeightedByRates => {
                    // The next draw depends on the weights after the
                    // previous sweep, so draws interleave with the chunk
                    // barriers: draw → threaded sweep → merge the slices'
                    // change journals into the cache against the quiescent
                    // lattice → next draw.
                    let mut cache = self.take_fresh_cache(state);
                    let mut draw_rng = self.factory.stream(draw_stream_id(self.step));
                    let mut weights = Vec::with_capacity(m);
                    for position in 0..m {
                        cache.weights_into(&mut weights);
                        let chunk_idx = draw_weighted(&mut draw_rng, &weights);
                        let outcome = self.sweep_chunk_parallel(
                            state,
                            chunk_idx,
                            position,
                            num_species,
                            true,
                        );
                        stats.trials += outcome.trials;
                        stats.executed += outcome.executed;
                        self.conflicts += outcome.conflicts;
                        apply_coverage_deltas(&mut state.coverage, &outcome.deltas);
                        cache.apply_changes(
                            self.model,
                            self.partition,
                            &state.lattice,
                            &outcome.changes,
                        );
                        state.bump_mutations();
                        cache.note_epoch(state.mutation_epoch());
                        if let Some(claims) = &self.claims {
                            claims.clear();
                        }
                    }
                    #[cfg(debug_assertions)]
                    cache.assert_matches_scan(self.model, self.partition, &state.lattice);
                    self.cache = Some(cache);
                }
            }
            // Discretised time: one step = N trials of 1/(N·K) each = 1/K,
            // applied once per step (no float accumulation across trials).
            state.time += 1.0 / k_total;
            self.step += 1;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time, &state.coverage);
            }
        }
        stats
    }

    fn sweep_chunk_parallel(
        &self,
        state: &mut SimState,
        chunk_idx: usize,
        position: usize,
        num_species: usize,
        journal: bool,
    ) -> SliceOutcome {
        let chunk = self.partition.chunk(chunk_idx);
        let slice_len = chunk.len().div_ceil(self.threads);
        let slices: Vec<&[Site]> = chunk.chunks(slice_len.max(1)).collect();
        let shared = SharedCells::new(state.lattice.cells_mut(), self.partition.dims());
        let model = self.model;
        let alias = &self.alias;
        let claims = self.claims.as_ref();
        let checked = self.checked;
        // Keyed by sweep *position*, not chunk id: weighted selection and
        // with-replacement draws can sweep the same chunk twice in a step,
        // and each sweep must consume fresh streams.
        let base_stream = trial_stream_base(
            self.step,
            self.partition.num_chunks(),
            position,
            self.partition.num_sites(),
        );
        let factory = &self.factory;
        let shared_ref = &shared;

        let outcomes: Vec<SliceOutcome> = self.pool.install(|| {
            slices
                .par_iter()
                .map(|sites| {
                    sweep_slice(
                        model,
                        alias,
                        shared_ref,
                        sites,
                        factory,
                        base_stream,
                        num_species,
                        if checked { claims } else { None },
                        journal,
                    )
                })
                .collect()
        });

        let mut total = SliceOutcome {
            trials: 0,
            executed: 0,
            deltas: vec![0; num_species],
            conflicts: 0,
            changes: Vec::new(),
        };
        for o in outcomes {
            total.trials += o.trials;
            total.executed += o.executed;
            total.conflicts += o.conflicts;
            for (d, od) in total.deltas.iter_mut().zip(&o.deltas) {
                *d += od;
            }
            total.changes.extend(o.changes);
        }
        total
    }
}

/// Stream id for the chunk-order shuffle of a step (the high bit keeps it
/// disjoint from the trial streams, which grow from 1).
pub fn shuffle_stream_id(step: u64) -> u64 {
    0x8000_0000_0000_0000 | step
}

/// Stream id for the per-step chunk draws (weighted or with-replacement);
/// bits 63..62 keep it disjoint from both the shuffle and trial streams.
pub fn draw_stream_id(step: u64) -> u64 {
    0xC000_0000_0000_0000 | step
}

/// First trial stream id of one chunk sweep: the trial at global `site`
/// during sweep `position` of `step` draws from stream `base + site.0`.
///
/// Keying by `(step, position, site)` — never by thread or domain — is the
/// determinism contract shared with the sharded executor: any executor
/// sweeping the same `(seed, partition)` consumes identical randomness per
/// site and therefore produces identical trajectories.
pub fn trial_stream_base(step: u64, num_chunks: usize, position: usize, num_sites: usize) -> u64 {
    1 + (step * num_chunks as u64 + position as u64) * num_sites as u64
}

/// Apply a net coverage delta vector (summing to zero) as transitions.
pub fn apply_coverage_deltas(coverage: &mut psr_lattice::Coverage, deltas: &[i64]) {
    debug_assert_eq!(deltas.iter().sum::<i64>(), 0, "deltas must balance");
    let mut gains: Vec<(u8, i64)> = Vec::new();
    let mut losses: Vec<(u8, i64)> = Vec::new();
    for (species, &d) in deltas.iter().enumerate() {
        if d > 0 {
            gains.push((species as u8, d));
        } else if d < 0 {
            losses.push((species as u8, -d));
        }
    }
    let (mut gi, mut li) = (0, 0);
    while gi < gains.len() && li < losses.len() {
        let moved = gains[gi].1.min(losses[li].1);
        for _ in 0..moved {
            coverage.transition(losses[li].0, gains[gi].0);
        }
        gains[gi].1 -= moved;
        losses[li].1 -= moved;
        if gains[gi].1 == 0 {
            gi += 1;
        }
        if losses[li].1 == 0 {
            li += 1;
        }
    }
}

/// One slice sweep: one trial per site against the shared lattice, each
/// trial on its own site-keyed stream.
#[allow(clippy::too_many_arguments)]
fn sweep_slice(
    model: &Model,
    alias: &AliasTable,
    shared: &SharedCells<'_>,
    sites: &[Site],
    factory: &StreamFactory,
    base_stream: u64,
    num_species: usize,
    claims: Option<&ClaimTable>,
    journal: bool,
) -> SliceOutcome {
    let dims = shared.dims();
    let mut outcome = SliceOutcome {
        trials: 0,
        executed: 0,
        deltas: vec![0; num_species],
        conflicts: 0,
        changes: Vec::new(),
    };
    for &site in sites {
        let mut rng: Pcg32 = factory.stream(base_stream + site.0 as u64);
        let reaction = alias.sample(&mut rng);
        let rt: &ReactionType = model.reaction(reaction);
        outcome.trials += 1;

        if let Some(table) = claims {
            let mut ok = true;
            for t in rt.transforms() {
                let target = dims.translate(site, t.offset);
                if let Claim::Conflict { .. } = table.claim(target, site) {
                    outcome.conflicts += 1;
                    ok = false;
                }
            }
            if !ok {
                continue;
            }
        }

        // SAFETY: `site` belongs to the chunk being swept and no other
        // concurrent slice holds a site whose neighborhood intersects
        // Nb(site) — guaranteed by the partition validation in
        // `ParallelPndca::new` (or detected by the claim table above when
        // validation was bypassed).
        unsafe {
            let enabled = rt
                .transforms()
                .iter()
                .all(|t| shared.get(dims.translate(site, t.offset)) == t.src.id());
            if enabled {
                for t in rt.transforms() {
                    let target = dims.translate(site, t.offset);
                    let old = shared.set(target, t.tgt.id());
                    outcome.deltas[old as usize] -= 1;
                    outcome.deltas[t.tgt.id() as usize] += 1;
                    if journal {
                        outcome.changes.push((target, old, t.tgt.id()));
                    }
                }
                outcome.executed += 1;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_ca::partition_builder::{checkerboard, five_coloring};
    use psr_lattice::{Dims, Lattice};
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;

    fn diluted_adsorption() -> Model {
        ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .reaction("null", 99.0, |r| {
                r.site((0, 0), "*", "*");
            })
            .build()
    }

    #[test]
    fn parallel_langmuir_matches_analytic() {
        let model = diluted_adsorption();
        let d = Dims::square(50);
        let p = five_coloring(d);
        let mut exec = ParallelPndca::new(&model, &p, 2, 42);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        // K = 100, one step = 0.01 time units; 100 steps → t = 1.
        exec.run_steps(&mut state, 100, None);
        let theta = state.coverage.fraction(1);
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (theta - expected).abs() < 0.03,
            "parallel coverage {theta} vs analytic {expected}"
        );
        assert!(state.coverage.matches(&state.lattice));
        assert!((state.time - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed_and_threads() {
        let model = zgb_ziff(0.5, 3.0);
        let d = Dims::square(20);
        let p = five_coloring(d);
        let run = |seed: u64| {
            let mut exec = ParallelPndca::new(&model, &p, 3, seed);
            let mut state = SimState::new(Lattice::filled(d, 0), &model);
            exec.run_steps(&mut state, 10, None);
            state.lattice
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn trajectories_invariant_of_thread_count() {
        // Trial streams are keyed by (step, position, site), so the thread
        // count changes only the work split, never the trajectory — the
        // same contract the sharded executor relies on.
        let model = zgb_ziff(0.5, 3.0);
        let d = Dims::square(20);
        let p = five_coloring(d);
        let run = |threads: usize, selection: ChunkSelection| {
            let mut exec = ParallelPndca::new(&model, &p, threads, 13).with_selection(selection);
            let mut state = SimState::new(Lattice::filled(d, 0), &model);
            exec.run_steps(&mut state, 12, None);
            state.lattice
        };
        for selection in [
            ChunkSelection::InOrder,
            ChunkSelection::RandomOrder,
            ChunkSelection::RandomWithReplacement,
            ChunkSelection::WeightedByRates,
        ] {
            let reference = run(1, selection);
            for threads in [2, 3, 8] {
                assert_eq!(run(threads, selection), reference, "{selection:?}");
            }
        }
    }

    #[test]
    fn trials_count_is_n_per_step() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let p = five_coloring(d);
        let mut exec = ParallelPndca::new(&model, &p, 4, 1);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let stats = exec.run_steps(&mut state, 5, None);
        assert_eq!(stats.trials, 500);
        assert_eq!(exec.steps_done(), 5);
    }

    #[test]
    fn valid_partition_never_conflicts_under_checking() {
        let model = zgb_ziff(0.5, 3.0);
        let d = Dims::square(20);
        let p = five_coloring(d);
        let mut exec =
            ParallelPndca::new(&model, &p, 4, 11).with_conflict_checking(d.sites() as usize);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        exec.run_steps(&mut state, 20, None);
        assert_eq!(exec.conflicts_detected(), 0);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn failure_injection_invalid_partition_is_caught() {
        // The checkerboard violates the restriction for ZGB's pair
        // reactions: adjacent anchors share pattern sites. The claim table
        // must detect this.
        let model = zgb_ziff(0.5, 3.0);
        let d = Dims::square(20);
        let p = checkerboard(d);
        assert!(!p.is_valid_for(&model));
        // SAFETY: checked mode skips every trial whose claims conflict, so
        // no overlapping unsafe access actually happens.
        let mut exec = unsafe { ParallelPndca::new_unvalidated(&model, &p, 4, 5) }
            .with_conflict_checking(d.sites() as usize);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        exec.run_steps(&mut state, 20, None);
        assert!(
            exec.conflicts_detected() > 0,
            "claim table failed to detect the injected partition violation"
        );
    }

    #[test]
    #[should_panic(expected = "non-overlap restriction")]
    fn invalid_partition_rejected_at_construction() {
        let model = zgb_ziff(0.5, 3.0);
        let d = Dims::square(10);
        let p = checkerboard(d);
        ParallelPndca::new(&model, &p, 2, 0);
    }

    #[test]
    fn random_chunk_order_still_consistent() {
        let model = zgb_ziff(0.4, 2.0);
        let d = Dims::square(15);
        let p = five_coloring(d);
        let mut exec = ParallelPndca::new(&model, &p, 2, 3).with_random_chunk_order(true);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        exec.run_steps(&mut state, 10, None);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn weighted_selection_deterministic_and_consistent() {
        // WeightedByRates results must stay a pure function of
        // (seed, partition, threads); the debug-build assert_matches_scan
        // inside run_steps verifies the barrier-merged cache as well.
        let model = zgb_ziff(0.5, 3.0);
        let d = Dims::square(20);
        let p = five_coloring(d);
        let run = |seed: u64| {
            let mut exec = ParallelPndca::new(&model, &p, 3, seed)
                .with_selection(ChunkSelection::WeightedByRates);
            let mut state = SimState::new(Lattice::filled(d, 0), &model);
            let stats = exec.run_steps(&mut state, 10, None);
            // |P| = 5 weighted sweeps of one 80-site chunk per step.
            assert_eq!(stats.trials, 10 * 400);
            assert!(state.coverage.matches(&state.lattice));
            state.lattice
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn weighted_selection_thread_count_changes_streams_not_safety() {
        let model = zgb_ziff(0.5, 3.0);
        let d = Dims::square(20);
        let p = five_coloring(d);
        for threads in [1, 2, 4] {
            let mut exec = ParallelPndca::new(&model, &p, threads, 5)
                .with_selection(ChunkSelection::WeightedByRates)
                .with_conflict_checking(d.sites() as usize);
            let mut state = SimState::new(Lattice::filled(d, 0), &model);
            exec.run_steps(&mut state, 8, None);
            assert_eq!(exec.conflicts_detected(), 0);
            assert!(state.coverage.matches(&state.lattice));
        }
    }

    #[test]
    fn single_thread_executor_works() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let p = five_coloring(d);
        let mut exec = ParallelPndca::new(&model, &p, 1, 9);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let stats = exec.run_steps(&mut state, 3, None);
        assert_eq!(stats.trials, 300);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn recorder_receives_step_samples() {
        let model = diluted_adsorption();
        let d = Dims::square(20);
        let p = five_coloring(d);
        let mut exec = ParallelPndca::new(&model, &p, 2, 21);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rec = psr_dmc::recorder::Recorder::new(2, 0.05);
        exec.run_steps(&mut state, 10, Some(&mut rec));
        // K = 100 → one step = 0.01; grid 0.05 hits every 5th step.
        assert_eq!(rec.series(0).len(), 3); // t = 0, 0.05, 0.10
    }

    #[test]
    fn more_threads_than_chunk_sites_is_fine() {
        // 5x5 lattice: chunks of 5 sites, 8 threads — slices degenerate
        // to one site each and the executor must still be correct.
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(5);
        let p = five_coloring(d);
        let mut exec = ParallelPndca::new(&model, &p, 8, 2);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let stats = exec.run_steps(&mut state, 4, None);
        assert_eq!(stats.trials, 100);
        assert!(state.coverage.matches(&state.lattice));
    }
}
