//! Threaded execution of the Ω×T (type-partitioned) method.
//!
//! The Ω×T approach needs only **two** chunks (paper §5): each sweep
//! executes a *single* reaction type, and the checkerboard is conflict-free
//! per axis-pair type. Two chunks mean N/2 sites per parallel region and
//! only 2 barriers per step — better parallel efficiency than the 5-chunk
//! PNDCA at the cost of the burstier Ω×T kinetics.
//!
//! Safety mirrors [`crate::executor::ParallelPndca`], with the weaker
//! per-reaction precondition: during a sweep only one reaction type runs,
//! and `Partition::is_valid_for_reaction` guarantees the neighborhoods of
//! same-chunk anchors are disjoint *for that type*. Validated for every
//! (subset, type) pair at construction.

use rayon::prelude::*;

use crate::shared::SharedCells;
use psr_ca::tpndca::TypePartition;
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::RunStats;
use psr_dmc::sim::SimState;
use psr_lattice::Site;
use psr_model::Model;
use psr_rng::{AliasTable, StreamFactory};

/// Threaded type-partitioned NDCA.
pub struct ParallelTPndca<'m> {
    model: &'m Model,
    types: TypePartition,
    subset_alias: AliasTable,
    member_alias: Vec<AliasTable>,
    pool: rayon::ThreadPool,
    threads: usize,
    factory: StreamFactory,
    step: u64,
}

impl<'m> ParallelTPndca<'m> {
    /// Build the executor; validates the type partition (the per-reaction
    /// non-overlap rule, which is the safety precondition here).
    ///
    /// # Panics
    ///
    /// Panics if the type partition is invalid for `model`, or
    /// `threads == 0`.
    pub fn new(model: &'m Model, types: TypePartition, threads: usize, seed: u64) -> Self {
        assert!(threads > 0, "need at least one thread");
        types
            .validate(model)
            .unwrap_or_else(|e| panic!("invalid type partition: {e}"));
        let subset_rates: Vec<f64> = (0..types.num_subsets())
            .map(|j| types.subset_rate(model, j))
            .collect();
        let member_alias = types
            .subsets
            .iter()
            .map(|subset| {
                AliasTable::new(
                    &subset
                        .iter()
                        .map(|&ri| model.reaction(ri).rate())
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build thread pool");
        ParallelTPndca {
            model,
            subset_alias: AliasTable::new(&subset_rates),
            member_alias,
            types,
            pool,
            threads,
            factory: StreamFactory::new(seed),
            step: 0,
        }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `steps` steps (each: `|T|` subset draws, one parallel chunk
    /// sweep per draw).
    pub fn run_steps(
        &mut self,
        state: &mut SimState,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let k_total = self.model.total_rate();
        let n = state.num_sites() as f64;
        let num_species = self.model.species().len();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        for _ in 0..steps {
            let mut draw_rng = self.factory.stream(0x4000_0000_0000_0000 | self.step);
            let mut trials_this_step = 0u64;
            for draw in 0..self.types.num_subsets() {
                let j = self.subset_alias.sample(&mut draw_rng);
                let member = self.member_alias[j].sample(&mut draw_rng);
                let ri = self.types.subsets[j][member];
                let partition = &self.types.partitions[j];
                let chunk_idx = draw_rng.index(partition.num_chunks());
                let chunk = partition.chunk(chunk_idx);

                let slice_len = chunk.len().div_ceil(self.threads).max(1);
                let slices: Vec<&[Site]> = chunk.chunks(slice_len).collect();
                let shared = SharedCells::new(state.lattice.cells_mut(), partition.dims());
                let rt = self.model.reaction(ri);
                let dims = partition.dims();
                let shared_ref = &shared;

                let outcomes: Vec<(u64, Vec<i64>)> = self.pool.install(|| {
                    slices
                        .par_iter()
                        .map(|sites| {
                            let mut executed = 0u64;
                            let mut deltas = vec![0i64; num_species];
                            for &site in *sites {
                                // SAFETY: one reaction type per sweep and a
                                // per-reaction-valid partition — anchors'
                                // neighborhoods are pairwise disjoint, so
                                // concurrent access sets are disjoint.
                                unsafe {
                                    let enabled = rt.transforms().iter().all(|t| {
                                        shared_ref.get(dims.translate(site, t.offset)) == t.src.id()
                                    });
                                    if enabled {
                                        for t in rt.transforms() {
                                            let old = shared_ref
                                                .set(dims.translate(site, t.offset), t.tgt.id());
                                            deltas[old as usize] -= 1;
                                            deltas[t.tgt.id() as usize] += 1;
                                        }
                                        executed += 1;
                                    }
                                }
                            }
                            (executed, deltas)
                        })
                        .collect()
                });
                let _ = draw;
                for (executed, deltas) in outcomes {
                    stats.executed += executed;
                    crate::executor::apply_coverage_deltas(&mut state.coverage, &deltas);
                }
                stats.trials += chunk.len() as u64;
                trials_this_step += chunk.len() as u64;
            }
            // Each trial is worth 1/(N·K) of simulated time.
            state.time += trials_this_step as f64 / (n * k_total);
            self.step += 1;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time, &state.coverage);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_ca::tpndca::axis_type_partition;
    use psr_lattice::{Dims, Lattice};
    use psr_model::library::zgb::zgb_ziff;

    #[test]
    fn runs_and_stays_consistent() {
        let model = zgb_ziff(0.45, 3.0);
        let dims = Dims::square(20);
        let tp = axis_type_partition(&model, dims);
        let mut exec = ParallelTPndca::new(&model, tp, 2, 7);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let stats = exec.run_steps(&mut state, 20, None);
        assert!(stats.trials > 0);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let model = zgb_ziff(0.5, 2.0);
        let dims = Dims::square(10);
        let run = |seed| {
            let tp = axis_type_partition(&model, dims);
            let mut exec = ParallelTPndca::new(&model, tp, 3, seed);
            let mut state = SimState::new(Lattice::filled(dims, 0), &model);
            exec.run_steps(&mut state, 10, None);
            state.lattice
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn trials_per_step_sum_to_n() {
        // Each of the 2 subset draws sweeps one of 2 half-lattice chunks.
        let model = zgb_ziff(0.5, 2.0);
        let dims = Dims::square(10);
        let tp = axis_type_partition(&model, dims);
        let mut exec = ParallelTPndca::new(&model, tp, 2, 1);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let stats = exec.run_steps(&mut state, 4, None);
        assert_eq!(stats.trials, 4 * 100);
    }

    #[test]
    #[should_panic(expected = "invalid type partition")]
    fn invalid_type_partition_rejected() {
        let model = zgb_ziff(0.5, 2.0);
        let dims = Dims::square(4);
        // A partition that is NOT valid for vertical pairs: rows.
        let labels: Vec<u32> = (0..16).map(|i| i / 4).collect();
        let rows = psr_ca::partition::Partition::from_labels(dims, &labels);
        let tp = psr_ca::tpndca::TypePartition {
            subsets: vec![(0..model.num_reactions()).collect()],
            partitions: vec![rows],
        };
        ParallelTPndca::new(&model, tp, 2, 0);
    }
}
