//! An analytical parallel-machine model for the Fig 7 speedup surface.
//!
//! The paper measured `T(1,N)/T(p,N)` on a multiprocessor with up to ~10
//! CPUs. This repository's reference hardware has a single core, so the
//! wall-clock surface cannot be measured directly (DESIGN.md, substitution
//! 1). Instead we model a PNDCA step on `p` processors:
//!
//! ```text
//! T(p) = Σ_chunks [ ⌈|P_i| / p⌉ · t_site  +  t_sync(p) ]
//! t_sync(p) = α + β·p          (barrier + result merge)
//! t_sync(1) = 0                (no synchronisation sequentially)
//! ```
//!
//! `t_site` — the cost of one trial — is *calibrated* from the real
//! sequential executor ([`MachineParams::calibrate`]), so the model's work
//! term is grounded in measurement; only the synchronisation constants are
//! assumptions (defaults chosen in the range of SMP barrier costs). The
//! qualitative Fig 7 shape is robust to the constants: speedup grows with
//! the system size `N` (work amortises the barriers) and saturates or
//! decays with `p` once per-chunk slices become small.

use psr_ca::partition_builder::five_coloring;
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice};
use psr_model::Model;

/// Cost constants of the modelled machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineParams {
    /// Seconds per site trial (work term).
    pub t_site: f64,
    /// Barrier base latency per chunk sweep, seconds.
    pub sync_alpha: f64,
    /// Barrier per-processor latency, seconds.
    pub sync_beta: f64,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            t_site: 100e-9,
            sync_alpha: 400e-6,
            sync_beta: 10e-6,
        }
    }
}

impl MachineParams {
    /// Measure `t_site` by timing the real parallel executor with one
    /// thread on `dims` (keeps the default synchronisation constants).
    pub fn calibrate(model: &Model, dims: Dims, steps: u64, seed: u64) -> Self {
        let partition = five_coloring(dims);
        let mut exec = crate::executor::ParallelPndca::new(model, &partition, 1, seed);
        let mut state = SimState::new(Lattice::filled(dims, 0), model);
        // Warm up caches and the allocator.
        exec.run_steps(&mut state, 2, None);
        let start = std::time::Instant::now();
        let stats = exec.run_steps(&mut state, steps, None);
        let elapsed = start.elapsed().as_secs_f64();
        MachineParams {
            t_site: (elapsed / stats.trials as f64).max(1e-12),
            ..MachineParams::default()
        }
    }
}

/// The modelled machine: evaluates step times and speedups.
#[derive(Clone, Copy, Debug)]
pub struct SimulatedMachine {
    params: MachineParams,
}

impl SimulatedMachine {
    /// A machine with the given constants.
    pub fn new(params: MachineParams) -> Self {
        SimulatedMachine { params }
    }

    /// The cost constants.
    pub fn params(&self) -> MachineParams {
        self.params
    }

    /// Modelled time of one PNDCA step on `p` processors for a lattice of
    /// `sites` sites split into `chunks` equal chunks.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn step_time(&self, p: usize, sites: u64, chunks: usize) -> f64 {
        assert!(
            p > 0 && sites > 0 && chunks > 0,
            "arguments must be positive"
        );
        let chunk_size = sites as f64 / chunks as f64;
        let work_per_chunk = (chunk_size / p as f64).ceil() * self.params.t_site;
        let sync = if p == 1 {
            0.0
        } else {
            self.params.sync_alpha + self.params.sync_beta * p as f64
        };
        chunks as f64 * (work_per_chunk + sync)
    }

    /// The Fig 7 quantity: `T(1,N) / T(p,N)`.
    pub fn speedup(&self, p: usize, sites: u64, chunks: usize) -> f64 {
        self.step_time(1, sites, chunks) / self.step_time(p, sites, chunks)
    }

    /// Parallel efficiency `speedup / p`.
    pub fn efficiency(&self, p: usize, sites: u64, chunks: usize) -> f64 {
        self.speedup(p, sites, chunks) / p as f64
    }

    /// The Fig 7 surface: speedups for side lengths `sides` and processor
    /// counts `procs`, as rows `(side, p, speedup)`.
    pub fn surface(&self, sides: &[u32], procs: &[usize], chunks: usize) -> Vec<(u32, usize, f64)> {
        let mut rows = Vec::new();
        for &n in sides {
            for &p in procs {
                let sites = n as u64 * n as u64;
                rows.push((n, p, self.speedup(p, sites, chunks)));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> SimulatedMachine {
        SimulatedMachine::new(MachineParams::default())
    }

    #[test]
    fn speedup_is_one_on_one_processor() {
        let m = machine();
        assert_eq!(m.speedup(1, 100 * 100, 5), 1.0);
    }

    #[test]
    fn speedup_grows_with_system_size() {
        // Fig 7: larger N amortises synchronisation.
        let m = machine();
        let s_small = m.speedup(8, 200 * 200, 5);
        let s_large = m.speedup(8, 1000 * 1000, 5);
        assert!(
            s_large > s_small,
            "speedup must grow with N: {s_small} vs {s_large}"
        );
        assert!(s_large > 6.0, "large systems should approach p: {s_large}");
    }

    #[test]
    fn speedup_saturates_with_processors_on_small_systems() {
        // For small N the sync term dominates: speedup stops growing (or
        // shrinks) as p rises.
        let m = machine();
        let s2 = m.speedup(2, 200 * 200, 5);
        let s10 = m.speedup(10, 200 * 200, 5);
        assert!(
            s10 < s2 * 5.0 * 0.8,
            "sync overhead must bend the curve: s2 = {s2}, s10 = {s10}"
        );
    }

    #[test]
    fn efficiency_decreases_with_p() {
        let m = machine();
        let e2 = m.efficiency(2, 500 * 500, 5);
        let e10 = m.efficiency(10, 500 * 500, 5);
        assert!(e2 > e10, "efficiency must fall with p: {e2} vs {e10}");
        assert!(e2 <= 1.0 + 1e-9);
    }

    #[test]
    fn surface_has_all_rows() {
        let m = machine();
        let rows = m.surface(&[200, 500, 1000], &[2, 4, 8], 5);
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().all(|&(_, _, s)| s >= 0.9));
    }

    #[test]
    fn speedup_never_exceeds_p() {
        let m = machine();
        for p in [2usize, 4, 8, 16] {
            for side in [100u32, 500, 1000] {
                let s = m.speedup(p, side as u64 * side as u64, 5);
                assert!(
                    s <= p as f64 + 1e-9,
                    "speedup {s} exceeds p = {p} for side {side}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_processors_panics() {
        machine().step_time(0, 100, 5);
    }
}
