//! Shared mutable lattice cells with a partition-based safety contract.
//!
//! # Safety model
//!
//! [`SharedCells`] hands out raw read/write access to the lattice from
//! multiple threads *without* synchronisation. That is sound if and only if
//! concurrent accesses never touch the same cell — which is precisely what
//! the paper's non-overlap restriction guarantees for sites of one chunk:
//!
//! > for all `s, t ∈ P_i`, `s ≠ t`: `Nb(s) ∩ Nb(t) = ∅`
//!
//! A trial anchored at `s` reads and writes only sites in `Nb(s)`, so two
//! concurrent trials anchored at distinct same-chunk sites are data-race
//! free. The executor enforces "one anchor site handled by exactly one
//! thread, all anchors from the same chunk" structurally, and
//! [`ClaimTable`] re-verifies the disjointness dynamically in checked mode
//! (used by tests and failure injection).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

use psr_lattice::{Dims, Site};

/// An unsynchronised shared view of lattice cells.
///
/// All access is `unsafe`; callers must guarantee that concurrently
/// accessed cell sets are disjoint (see module docs).
pub struct SharedCells<'a> {
    cells: &'a [UnsafeCell<u8>],
    dims: Dims,
}

// SAFETY: SharedCells only exposes unsafe accessors whose contract requires
// disjoint access; under that contract there are no data races.
unsafe impl Sync for SharedCells<'_> {}
unsafe impl Send for SharedCells<'_> {}

impl<'a> SharedCells<'a> {
    /// Wrap a mutably borrowed cell slice.
    pub fn new(cells: &'a mut [u8], dims: Dims) -> Self {
        assert_eq!(cells.len(), dims.sites() as usize, "cell count mismatch");
        // SAFETY: &mut [u8] -> &[UnsafeCell<u8>] is the sanctioned way to
        // opt into interior mutability for an exclusively borrowed slice
        // (same layout, and the &mut guarantees no other aliases exist).
        let cells = unsafe { &*(cells as *mut [u8] as *const [UnsafeCell<u8>]) };
        SharedCells { cells, dims }
    }

    /// Lattice dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Read a cell.
    ///
    /// # Safety
    ///
    /// No other thread may be writing this cell concurrently.
    #[inline]
    pub unsafe fn get(&self, site: Site) -> u8 {
        *self.cells[site.0 as usize].get()
    }

    /// Write a cell, returning the previous value.
    ///
    /// # Safety
    ///
    /// No other thread may be reading or writing this cell concurrently.
    #[inline]
    pub unsafe fn set(&self, site: Site, value: u8) -> u8 {
        let ptr = self.cells[site.0 as usize].get();
        std::mem::replace(&mut *ptr, value)
    }
}

/// Outcome of a claimed access in checked mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Claim {
    /// The cell was free or already owned by this anchor.
    Granted,
    /// Another anchor site holds the cell — the partition is violated.
    Conflict {
        /// The anchor already holding the cell.
        holder: Site,
    },
}

/// Atomic per-site claim table verifying neighborhood disjointness.
///
/// During a chunk sweep every trial claims all sites of its reaction
/// neighborhood under its anchor's identity; a claim held by a *different*
/// anchor proves two neighborhoods overlap — i.e. the partition was not
/// conflict-free. Claims persist for the whole sweep and are cleared at the
/// barrier.
pub struct ClaimTable {
    claims: Vec<AtomicU32>,
}

impl ClaimTable {
    /// A table for `n` sites, all unclaimed.
    pub fn new(n: usize) -> Self {
        ClaimTable {
            claims: (0..n).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Claim `site` for `anchor`.
    pub fn claim(&self, site: Site, anchor: Site) -> Claim {
        let tag = anchor.0 + 1;
        match self.claims[site.0 as usize].compare_exchange(
            0,
            tag,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Claim::Granted,
            Err(existing) if existing == tag => Claim::Granted,
            Err(existing) => Claim::Conflict {
                holder: Site(existing - 1),
            },
        }
    }

    /// Release every claim (call at the chunk barrier).
    pub fn clear(&self) {
        for c in &self.claims {
            c.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_cells_roundtrip() {
        let dims = Dims::new(4, 1);
        let mut cells = vec![0u8, 1, 2, 3];
        {
            let shared = SharedCells::new(&mut cells, dims);
            // SAFETY: single-threaded test.
            unsafe {
                assert_eq!(shared.get(Site(2)), 2);
                assert_eq!(shared.set(Site(2), 9), 2);
                assert_eq!(shared.get(Site(2)), 9);
            }
        }
        assert_eq!(cells, vec![0, 1, 9, 3]);
    }

    #[test]
    fn claims_granted_and_idempotent() {
        let table = ClaimTable::new(8);
        assert_eq!(table.claim(Site(3), Site(0)), Claim::Granted);
        assert_eq!(table.claim(Site(3), Site(0)), Claim::Granted);
    }

    #[test]
    fn conflicting_claim_reports_holder() {
        let table = ClaimTable::new(8);
        table.claim(Site(3), Site(0));
        assert_eq!(
            table.claim(Site(3), Site(5)),
            Claim::Conflict { holder: Site(0) }
        );
    }

    #[test]
    fn clear_releases_claims() {
        let table = ClaimTable::new(4);
        table.claim(Site(1), Site(0));
        table.clear();
        assert_eq!(table.claim(Site(1), Site(2)), Claim::Granted);
    }

    #[test]
    fn concurrent_disjoint_writes_are_sound() {
        // Two threads write disjoint halves through SharedCells.
        let dims = Dims::new(8, 1);
        let mut cells = vec![0u8; 8];
        {
            let shared = SharedCells::new(&mut cells, dims);
            std::thread::scope(|scope| {
                let s = &shared;
                scope.spawn(move || {
                    for i in 0..4u32 {
                        // SAFETY: this thread owns sites 0..4 exclusively.
                        unsafe { s.set(Site(i), 1) };
                    }
                });
                scope.spawn(move || {
                    for i in 4..8u32 {
                        // SAFETY: this thread owns sites 4..8 exclusively.
                        unsafe { s.set(Site(i), 2) };
                    }
                });
            });
        }
        assert_eq!(cells, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }
}
