//! The Segers domain-decomposition baseline (paper §3).
//!
//! Segers et al. parallelised RSM by assigning coherent lattice *blocks*
//! ("chunks" in their terminology) to processors. Reactions whose
//! neighborhood stays inside a block run locally; reactions touching the
//! block boundary require exchanging state with the neighbor processor.
//! The paper's motivation for the partitioned CA is exactly that this
//! communication dominates: "the overhead of the parallel algorithm is
//! considerable because of the high communication latency".
//!
//! This module reproduces the *kinetically exact* sequential semantics of
//! the scheme (trials are executed in RSM order) while instrumenting the
//! communication it would force on `p` processors: every trial anchored in
//! a block's boundary strip counts as a halo exchange. The resulting cost
//! model quantifies the volume/boundary trade-off the paper cites.

use psr_dmc::events::EventHook;
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::{Rsm, RunStats};
use psr_dmc::sim::SimState;
use psr_lattice::Dims;
use psr_model::Model;
use psr_rng::SimRng;

/// Communication statistics of a domain-decomposed run.
///
/// The Segers baseline fills only the *modeled* trial counters (it runs
/// sequentially and counts the exchanges a block decomposition would
/// force). The sharded executor (psr-shard) fills all four fields with
/// *measured* values: every halo/write-back frame that crosses a worker
/// boundary is counted with its encoded byte size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Trials anchored strictly inside a block (no communication).
    pub local_trials: u64,
    /// Trials in a boundary strip (would require a halo exchange).
    pub boundary_trials: u64,
    /// Frames actually sent between distinct workers (0 when modeled).
    pub halo_messages: u64,
    /// Encoded bytes of those frames, headers included (0 when modeled).
    pub halo_bytes: u64,
    /// Frames that crossed a real socket (0 for in-process transports).
    pub wire_frames: u64,
    /// Bytes written to sockets, frame headers included.
    pub wire_bytes: u64,
    /// Socket flushes that carried more than one frame (coalescing wins).
    pub wire_batches: u64,
    /// Socket flushes: one buffered write per (peer, phase) with data.
    pub wire_flushes: u64,
}

impl CommStats {
    /// Fraction of trials requiring communication.
    pub fn boundary_fraction(&self) -> f64 {
        let total = self.local_trials + self.boundary_trials;
        if total == 0 {
            0.0
        } else {
            self.boundary_trials as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for CommStats {
    fn add_assign(&mut self, rhs: Self) {
        self.local_trials += rhs.local_trials;
        self.boundary_trials += rhs.boundary_trials;
        self.halo_messages += rhs.halo_messages;
        self.halo_bytes += rhs.halo_bytes;
        self.wire_frames += rhs.wire_frames;
        self.wire_bytes += rhs.wire_bytes;
        self.wire_batches += rhs.wire_batches;
        self.wire_flushes += rhs.wire_flushes;
    }
}

/// RSM over a `bx × by` block grid with boundary-trial accounting.
pub struct SegersDecomposition<'m> {
    rsm: Rsm<'m>,
    /// Per-site flag: true when the site's combined neighborhood crosses
    /// its block's edge.
    is_boundary: Vec<bool>,
    blocks_x: u32,
    blocks_y: u32,
}

impl<'m> SegersDecomposition<'m> {
    /// Decompose `dims` into a `blocks_x × blocks_y` grid of blocks.
    ///
    /// # Panics
    ///
    /// Panics unless the block grid divides the lattice evenly and each
    /// block is at least as wide as the model's interaction diameter.
    pub fn new(model: &'m Model, dims: Dims, blocks_x: u32, blocks_y: u32) -> Self {
        assert!(blocks_x > 0 && blocks_y > 0, "need at least one block");
        assert!(
            dims.width().is_multiple_of(blocks_x) && dims.height().is_multiple_of(blocks_y),
            "block grid {blocks_x}x{blocks_y} does not divide {}x{}",
            dims.width(),
            dims.height()
        );
        let bw = dims.width() / blocks_x;
        let bh = dims.height() / blocks_y;
        let radius = model.interaction_radius();
        assert!(
            bw > 2 * radius && bh > 2 * radius,
            "blocks of {bw}x{bh} are too small for interaction radius {radius}"
        );
        // A site is "boundary" when some neighborhood offset leaves its
        // block: within distance `radius` of a block edge.
        let mut is_boundary = vec![false; dims.sites() as usize];
        for site in dims.iter_sites() {
            let c = dims.coord(site);
            let lx = c.x as u32 % bw;
            let ly = c.y as u32 % bh;
            let near_x = lx < radius || lx >= bw - radius;
            let near_y = ly < radius || ly >= bh - radius;
            is_boundary[site.0 as usize] = near_x || near_y;
        }
        SegersDecomposition {
            rsm: Rsm::new(model),
            is_boundary,
            blocks_x,
            blocks_y,
        }
    }

    /// Disable (or re-enable) the compiled reaction kernel and match
    /// patterns with the naive per-reaction scan. The RSM trajectory is
    /// bit-identical either way (the enabled check consumes no randomness);
    /// this is the escape hatch and the identity-test baseline.
    pub fn with_naive_matching(mut self, naive: bool) -> Self {
        self.rsm = self.rsm.with_naive_matching(naive);
        self
    }

    /// Number of processors (= blocks).
    pub fn num_blocks(&self) -> u32 {
        self.blocks_x * self.blocks_y
    }

    /// Fraction of lattice sites in boundary strips (the static
    /// volume/boundary ratio of the decomposition).
    pub fn static_boundary_fraction(&self) -> f64 {
        let boundary = self.is_boundary.iter().filter(|&&b| b).count();
        boundary as f64 / self.is_boundary.len() as f64
    }

    /// Run `steps` MC steps of exact RSM, accounting communication.
    pub fn run_mc_steps(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        steps: u64,
        recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> (RunStats, CommStats) {
        let mut comm = CommStats::default();
        let is_boundary = &self.is_boundary;
        let mut counting_hook = |event: psr_dmc::events::Event| {
            if is_boundary[event.site.0 as usize] {
                comm.boundary_trials += 1;
            } else {
                comm.local_trials += 1;
            }
            hook.on_event(event);
        };
        let stats = self
            .rsm
            .run_mc_steps(state, rng, steps, recorder, &mut counting_hook);
        (stats, comm)
    }

    /// Modelled parallel step time: local work is divided over the blocks,
    /// every boundary trial additionally pays `comm_latency` seconds.
    pub fn modeled_step_time(
        &self,
        comm: &CommStats,
        steps: u64,
        t_site: f64,
        comm_latency: f64,
    ) -> f64 {
        let p = self.num_blocks() as f64;
        let per_step_local = comm.local_trials as f64 / steps as f64;
        let per_step_boundary = comm.boundary_trials as f64 / steps as f64;
        per_step_local * t_site / p + per_step_boundary * (t_site + comm_latency)
    }

    /// Modelled speedup versus one processor (which pays no latency).
    pub fn modeled_speedup(
        &self,
        comm: &CommStats,
        steps: u64,
        t_site: f64,
        comm_latency: f64,
    ) -> f64 {
        let total = (comm.local_trials + comm.boundary_trials) as f64 / steps as f64;
        let t1 = total * t_site;
        t1 / self.modeled_step_time(comm, steps, t_site, comm_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_dmc::events::NoHook;
    use psr_lattice::Lattice;
    use psr_model::library::zgb::zgb_ziff;
    use psr_rng::rng_from_seed;

    #[test]
    fn boundary_fraction_matches_geometry() {
        // 20x20 lattice in 2x2 blocks of 10x10, radius 1: boundary strip
        // is the 2-site-wide frame minus… exactly the sites within 1 of a
        // block edge: per block 10² − 8² = 36 of 100.
        let model = zgb_ziff(0.5, 1.0);
        let d = Dims::new(20, 20);
        let seg = SegersDecomposition::new(&model, d, 2, 2);
        assert!((seg.static_boundary_fraction() - 0.36).abs() < 1e-12);
        assert_eq!(seg.num_blocks(), 4);
    }

    #[test]
    fn comm_counts_match_boundary_fraction() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::new(20, 20);
        let mut seg = SegersDecomposition::new(&model, d, 2, 2);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(3);
        let (stats, comm) = seg.run_mc_steps(&mut state, &mut rng, 20, None, &mut NoHook);
        assert_eq!(stats.trials, comm.local_trials + comm.boundary_trials);
        // RSM picks sites uniformly → boundary fraction ≈ static fraction.
        assert!(
            (comm.boundary_fraction() - 0.36).abs() < 0.03,
            "got {}",
            comm.boundary_fraction()
        );
    }

    #[test]
    fn compiled_kernel_identity_with_naive_matching() {
        // The Segers arm rides on Rsm, which routes enabled checks through
        // the CompiledModel kernel by default. Pin that the compiled and
        // naive arms stay bit-identical — trajectory AND communication
        // accounting — over a long run.
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::new(20, 20);
        let run = |naive: bool| {
            let mut seg = SegersDecomposition::new(&model, d, 2, 2).with_naive_matching(naive);
            let mut state = SimState::new(Lattice::filled(d, 0), &model);
            let mut rng = rng_from_seed(23);
            // 5 MC steps × 400 sites = 2000 trials ≥ the 1000-step identity
            // budget used by the other kernel differential tests.
            let (stats, comm) = seg.run_mc_steps(&mut state, &mut rng, 5, None, &mut NoHook);
            (state.lattice, stats, comm)
        };
        let (lattice_c, stats_c, comm_c) = run(false);
        let (lattice_n, stats_n, comm_n) = run(true);
        assert_eq!(lattice_c, lattice_n);
        assert_eq!(stats_c, stats_n);
        assert_eq!(comm_c, comm_n);
        assert_eq!(stats_c.trials, 2000);
        assert!(stats_c.executed > 0);
    }

    #[test]
    fn high_latency_kills_speedup() {
        // The paper's observation: with large communication latency the
        // domain decomposition hardly speeds up at all.
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::new(40, 40);
        let mut seg = SegersDecomposition::new(&model, d, 2, 2);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(4);
        let (_, comm) = seg.run_mc_steps(&mut state, &mut rng, 10, None, &mut NoHook);
        let t_site = 100e-9;
        let fast_net = seg.modeled_speedup(&comm, 10, t_site, 10e-9);
        let slow_net = seg.modeled_speedup(&comm, 10, t_site, 100e-6);
        assert!(fast_net > 2.0, "fast network speedup {fast_net}");
        assert!(
            slow_net < 1.0,
            "slow network must be a slowdown: {slow_net}"
        );
    }

    #[test]
    fn bigger_blocks_communicate_less() {
        let model = zgb_ziff(0.5, 1.0);
        let small_blocks = SegersDecomposition::new(&model, Dims::new(40, 40), 8, 8);
        let large_blocks = SegersDecomposition::new(&model, Dims::new(40, 40), 2, 2);
        assert!(large_blocks.static_boundary_fraction() < small_blocks.static_boundary_fraction());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_blocks_rejected() {
        let model = zgb_ziff(0.5, 1.0);
        SegersDecomposition::new(&model, Dims::new(8, 8), 4, 4);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn uneven_grid_rejected() {
        let model = zgb_ziff(0.5, 1.0);
        SegersDecomposition::new(&model, Dims::new(10, 10), 3, 2);
    }
}
