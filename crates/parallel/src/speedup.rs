//! Wall-clock speedup measurement `T(1,N) / T(p,N)`.
//!
//! This is the *measured* counterpart of [`crate::machine`]: it times the
//! real threaded executor. On a machine with `c` cores the measured curve
//! saturates at `c` regardless of the thread count — on the single-core
//! reference machine it stays flat at ≈1, which is why Fig 7 is regenerated
//! through the calibrated machine model (DESIGN.md substitution 1). The
//! measured rows are still reported in EXPERIMENTS.md as the honest
//! hardware baseline.

use crate::executor::ParallelPndca;
use psr_ca::partition_builder::five_coloring;
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice};
use psr_model::Model;

/// One measured speedup data point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeedupRow {
    /// Lattice side length.
    pub side: u32,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds with 1 thread.
    pub t1: f64,
    /// Wall-clock seconds with `threads` threads.
    pub tp: f64,
}

impl SpeedupRow {
    /// `T(1,N) / T(p,N)`.
    pub fn speedup(&self) -> f64 {
        self.t1 / self.tp
    }
}

fn time_run(model: &Model, dims: Dims, threads: usize, steps: u64, seed: u64) -> f64 {
    let partition = five_coloring(dims);
    let mut exec = ParallelPndca::new(model, &partition, threads, seed);
    let mut state = SimState::new(Lattice::filled(dims, 0), model);
    exec.run_steps(&mut state, 1, None); // warm-up
    let start = std::time::Instant::now();
    exec.run_steps(&mut state, steps, None);
    start.elapsed().as_secs_f64()
}

/// Measure `T(1,N)/T(p,N)` for each side length and thread count.
///
/// # Panics
///
/// Panics if `sides` contains a length not divisible by 5 (the 5-chunk
/// partition is used) or `steps == 0`.
pub fn measure_speedup(
    model: &Model,
    sides: &[u32],
    thread_counts: &[usize],
    steps: u64,
    seed: u64,
) -> Vec<SpeedupRow> {
    assert!(steps > 0, "need at least one step");
    let mut rows = Vec::new();
    for &side in sides {
        let dims = Dims::square(side);
        let t1 = time_run(model, dims, 1, steps, seed);
        for &threads in thread_counts {
            let tp = if threads == 1 {
                t1
            } else {
                time_run(model, dims, threads, steps, seed)
            };
            rows.push(SpeedupRow {
                side,
                threads,
                t1,
                tp,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_model::library::zgb::zgb_ziff;

    #[test]
    fn measures_positive_times() {
        let model = zgb_ziff(0.5, 2.0);
        let rows = measure_speedup(&model, &[20], &[1, 2], 3, 1);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.t1 > 0.0);
            assert!(row.tp > 0.0);
            assert!(row.speedup() > 0.0);
        }
    }

    #[test]
    fn single_thread_row_has_unit_speedup() {
        let model = zgb_ziff(0.5, 2.0);
        let rows = measure_speedup(&model, &[20], &[1], 2, 2);
        assert_eq!(rows[0].speedup(), 1.0);
    }
}
