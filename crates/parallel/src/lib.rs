//! Parallel execution of partitioned CA simulations.
//!
//! The point of the paper's partitions: all sites of a chunk can be updated
//! *simultaneously* because their reaction neighborhoods are disjoint. This
//! crate turns that property into actual parallelism:
//!
//! - [`shared`] — a `Sync` view of the lattice cells whose safety contract
//!   is exactly the partition non-overlap restriction, plus an atomic claim
//!   table that *verifies* the contract at runtime in checked mode;
//! - [`executor`] — a threaded PNDCA: each chunk's sweep is split into
//!   slices executed concurrently on a rayon pool, with per-slice
//!   deterministic RNG streams;
//! - [`machine`] — an analytical parallel-machine model `T(p, N)` calibrated
//!   against the sequential executor, used to regenerate the paper's Fig 7
//!   speedup surface on hardware with fewer cores than the 2003 testbed
//!   (see DESIGN.md, substitution 1);
//! - [`segers`] — the domain-decomposition baseline the paper contrasts
//!   against (§3): block-parallel RSM with an interior/boundary split and
//!   explicit accounting of the communication the block boundaries force;
//! - [`speedup`] — wall-clock measurement harness `T(1,N)/T(p,N)`.

#![warn(missing_docs)]

pub mod ensemble;
pub mod executor;
pub mod machine;
pub mod segers;
pub mod shared;
pub mod speedup;
pub mod tpndca_parallel;

pub use ensemble::{run_ensemble, run_replicas, EnsembleSeries};
pub use executor::{
    apply_coverage_deltas, draw_stream_id, shuffle_stream_id, trial_stream_base, ParallelPndca,
};
pub use machine::{MachineParams, SimulatedMachine};
pub use segers::{CommStats, SegersDecomposition};
pub use speedup::{measure_speedup, SpeedupRow};
pub use tpndca_parallel::ParallelTPndca;
