//! Replica-level parallelism: the paper's "third way".
//!
//! §1 of the paper lists three ways to parallelise: exploit concurrency in
//! the algorithm, change the model (the partitioned CA), or "obtain the
//! necessary statistics from the averaging of a large number of small,
//! independent simulations". This module is that third way: run `R`
//! independent replicas of any `Simulator`-style closure concurrently
//! (they share nothing, so this parallelises perfectly) and average their
//! coverage series pointwise.

use rayon::prelude::*;
use rayon::ThreadPool;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use psr_stats::{Summary, TimeSeries};

/// Worker pools cached per thread count. `run_replicas` is called once
/// per sequential-sampling round — dozens of times per validation tier —
/// and building a fresh `ThreadPool` spawns and later joins that many OS
/// threads each call. The pools are tiny (threads, no queues to speak of
/// between calls), so keeping one per distinct `threads` value for the
/// process lifetime trades a few idle threads for zero rebuild cost.
fn pool_for(threads: usize) -> Arc<ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = pools.lock().expect("pool cache poisoned");
    Arc::clone(map.entry(threads).or_insert_with(|| {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("failed to build thread pool"),
        )
    }))
}

/// Mean ± standard error of an observable across replicas, per time point.
#[derive(Clone, Debug)]
pub struct EnsembleSeries {
    times: Vec<f64>,
    summaries: Vec<Summary>,
}

impl EnsembleSeries {
    /// Average `series` (which must share one time grid) pointwise.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or the grids disagree.
    pub fn from_series(series: &[TimeSeries]) -> Self {
        assert!(!series.is_empty(), "need at least one replica");
        let times = series[0].times().to_vec();
        for s in series {
            assert_eq!(s.times(), times.as_slice(), "replica grids differ");
        }
        let mut summaries = vec![Summary::new(); times.len()];
        for s in series {
            for (summary, &v) in summaries.iter_mut().zip(s.values()) {
                summary.add(v);
            }
        }
        EnsembleSeries { times, summaries }
    }

    /// Number of replicas that were averaged.
    pub fn replicas(&self) -> u64 {
        self.summaries.first().map_or(0, Summary::count)
    }

    /// The ensemble-mean series.
    pub fn mean(&self) -> TimeSeries {
        let mut out = TimeSeries::new();
        for (&t, s) in self.times.iter().zip(&self.summaries) {
            out.push(t, s.mean().expect("non-empty ensemble"));
        }
        out
    }

    /// The standard error of the mean, per time point.
    pub fn std_error(&self) -> TimeSeries {
        let mut out = TimeSeries::new();
        for (&t, s) in self.times.iter().zip(&self.summaries) {
            out.push(t, s.std_error().unwrap_or(0.0));
        }
        out
    }
}

/// Run `replicas` independent simulations concurrently on a pool of
/// `threads` workers, collecting whatever each replica returns, in replica
/// order (results are deterministic regardless of scheduling).
///
/// The closure receives the replica index (use it to derive the seed).
/// This is the generic engine under [`run_ensemble`]; the `psr-validate`
/// harness uses it directly for replica distributions that are not time
/// series.
///
/// # Panics
///
/// Panics if `replicas == 0` or `threads == 0`.
pub fn run_replicas<T, F>(replicas: u64, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(replicas > 0, "need at least one replica");
    assert!(threads > 0, "need at least one thread");
    pool_for(threads).install(|| (0..replicas).into_par_iter().map(&run).collect())
}

/// Run `replicas` independent simulations concurrently on a pool of
/// `threads` workers and average the series each returns.
///
/// The closure receives the replica index (use it to derive the seed) and
/// returns that replica's sampled observable. Replicas must sample on the
/// same time grid (use a fixed `sample_dt` and horizon).
///
/// # Panics
///
/// Panics if `replicas == 0` or `threads == 0`, or if replica grids differ.
pub fn run_ensemble<F>(replicas: u64, threads: usize, run: F) -> EnsembleSeries
where
    F: Fn(u64) -> TimeSeries + Sync,
{
    let series = run_replicas(replicas, threads, run);
    EnsembleSeries::from_series(&series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_dmc::events::NoHook;
    use psr_dmc::recorder::Recorder;
    use psr_dmc::rsm::Rsm;
    use psr_dmc::sim::SimState;
    use psr_lattice::{Dims, Lattice};
    use psr_model::ModelBuilder;
    use psr_rng::rng_from_seed;

    fn langmuir_replica(seed: u64, side: u32, t_end: f64) -> TimeSeries {
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .build();
        let mut state = SimState::new(Lattice::filled(Dims::square(side), 0), &model);
        let mut rng = rng_from_seed(seed);
        let mut rec = Recorder::new(2, 0.25);
        Rsm::new(&model).run_until(&mut state, &mut rng, t_end, Some(&mut rec), &mut NoHook);
        rec.series(1).clone()
    }

    #[test]
    fn ensemble_mean_matches_analytic_langmuir() {
        // Averaging beats a single small replica: 32 replicas of a tiny
        // 8×8 lattice recover θ(t) = 1 − e^(−t) tightly.
        let ens = run_ensemble(32, 2, |i| langmuir_replica(1000 + i, 8, 1.0));
        assert_eq!(ens.replicas(), 32);
        let mean = ens.mean();
        let expected = 1.0 - (-1.0f64).exp();
        let last = *mean.values().last().expect("samples");
        assert!(
            (last - expected).abs() < 0.03,
            "ensemble mean {last} vs analytic {expected}"
        );
        // Standard error shrinks with replicas: should be well below the
        // single-replica fluctuation scale sqrt(p(1-p)/64) ≈ 0.06.
        let se = *ens.std_error().values().last().expect("samples");
        assert!(se < 0.02, "standard error {se}");
    }

    #[test]
    fn ensemble_is_deterministic_in_seeds() {
        let a = run_ensemble(8, 2, |i| langmuir_replica(i, 6, 0.5)).mean();
        let b = run_ensemble(8, 2, |i| langmuir_replica(i, 6, 0.5)).mean();
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn more_replicas_reduce_standard_error() {
        let few = run_ensemble(4, 1, |i| langmuir_replica(i, 6, 1.0));
        let many = run_ensemble(32, 1, |i| langmuir_replica(i, 6, 1.0));
        let se_few: f64 =
            few.std_error().values().iter().sum::<f64>() / few.std_error().len() as f64;
        let se_many: f64 =
            many.std_error().values().iter().sum::<f64>() / many.std_error().len() as f64;
        assert!(
            se_many < se_few,
            "SE should fall with replicas: {se_few} vs {se_many}"
        );
    }

    #[test]
    fn pools_are_cached_per_thread_count() {
        assert!(Arc::ptr_eq(&pool_for(2), &pool_for(2)));
        assert!(!Arc::ptr_eq(&pool_for(2), &pool_for(3)));
        assert_eq!(pool_for(3).current_num_threads(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        run_ensemble(0, 1, |_| TimeSeries::new());
    }

    #[test]
    #[should_panic(expected = "grids differ")]
    fn mismatched_grids_panic() {
        let a = TimeSeries::from_points(vec![0.0, 1.0], vec![0.0, 0.0]);
        let b = TimeSeries::from_points(vec![0.0, 2.0], vec![0.0, 0.0]);
        EnsembleSeries::from_series(&[a, b]);
    }
}
