//! Property-based tests for reaction-type semantics.

use proptest::prelude::*;
use psr_lattice::{Dims, Lattice, Offset, Site};
use psr_model::{ReactionType, Species, Transform};

/// Strategy: a reaction type over `num_species` species with offsets in the
/// von Neumann ball (the paper's pattern class).
fn reaction_strategy(num_species: u8) -> impl Strategy<Value = ReactionType> {
    let offsets = prop::sample::subsequence(
        vec![
            Offset::new(1, 0),
            Offset::new(-1, 0),
            Offset::new(0, 1),
            Offset::new(0, -1),
        ],
        0..=2,
    );
    (
        offsets,
        prop::collection::vec((0..num_species, 0..num_species), 3),
        0.01f64..10.0,
    )
        .prop_map(move |(extra, specs, rate)| {
            let mut transforms = vec![Transform::at_origin(
                Species(specs[0].0),
                Species(specs[0].1),
            )];
            for (i, off) in extra.into_iter().enumerate() {
                let (src, tgt) = specs[i + 1];
                transforms.push(Transform::new(off, Species(src), Species(tgt)));
            }
            ReactionType::new("prop", transforms, rate)
        })
}

proptest! {
    #[test]
    fn execution_only_touches_the_neighborhood(
        rt in reaction_strategy(3),
        cells in prop::collection::vec(0u8..3, 36),
        anchor in 0u32..36,
    ) {
        let dims = Dims::new(6, 6);
        let lattice = Lattice::from_cells(dims, cells);
        let site = Site(anchor);
        if rt.is_enabled(&lattice, site) {
            let mut after = lattice.clone();
            rt.execute_collect(&mut after, site);
            let nb_sites = rt.neighborhood().sites_at(dims, site);
            for s in dims.iter_sites() {
                if !nb_sites.contains(&s) {
                    prop_assert_eq!(
                        lattice.get(s),
                        after.get(s),
                        "site {} outside Nb changed", s.0
                    );
                }
            }
        }
    }

    #[test]
    fn execution_writes_the_target_pattern(
        rt in reaction_strategy(3),
        cells in prop::collection::vec(0u8..3, 36),
        anchor in 0u32..36,
    ) {
        let dims = Dims::new(6, 6);
        let mut lattice = Lattice::from_cells(dims, cells);
        let site = Site(anchor);
        if rt.is_enabled(&lattice, site) {
            rt.execute_collect(&mut lattice, site);
            for t in rt.transforms() {
                prop_assert_eq!(
                    lattice.get(dims.translate(site, t.offset)),
                    t.tgt.id()
                );
            }
        }
    }

    #[test]
    fn changes_record_matches_lattice_diff(
        rt in reaction_strategy(3),
        cells in prop::collection::vec(0u8..3, 36),
        anchor in 0u32..36,
    ) {
        let dims = Dims::new(6, 6);
        let before = Lattice::from_cells(dims, cells);
        let mut after = before.clone();
        let site = Site(anchor);
        if rt.is_enabled(&after, site) {
            let changes = rt.execute_collect(&mut after, site);
            prop_assert_eq!(changes.len(), rt.arity());
            for (s, old, new) in changes {
                prop_assert_eq!(before.get(s), old);
                prop_assert_eq!(after.get(s), new);
            }
        }
    }

    #[test]
    fn enabledness_is_equivalent_to_source_match(
        rt in reaction_strategy(3),
        cells in prop::collection::vec(0u8..3, 36),
        anchor in 0u32..36,
    ) {
        let dims = Dims::new(6, 6);
        let lattice = Lattice::from_cells(dims, cells);
        let site = Site(anchor);
        let matches = rt
            .transforms()
            .iter()
            .all(|t| lattice.get(dims.translate(site, t.offset)) == t.src.id());
        prop_assert_eq!(rt.is_enabled(&lattice, site), matches);
    }

    #[test]
    fn idempotent_patterns_allow_re_execution(
        cells in prop::collection::vec(0u8..2, 16),
        anchor in 0u32..16,
    ) {
        // A reaction whose target equals its source stays enabled forever.
        let rt = ReactionType::new(
            "touch",
            vec![Transform::at_origin(Species(0), Species(0))],
            1.0,
        );
        let dims = Dims::new(4, 4);
        let mut lattice = Lattice::from_cells(dims, cells);
        let site = Site(anchor);
        if rt.is_enabled(&lattice, site) {
            rt.execute_collect(&mut lattice, site);
            prop_assert!(rt.is_enabled(&lattice, site));
        }
    }
}
