//! The domain `D` of particle types.
//!
//! The paper's domain is `D = {*, A, B, …}` where `*` marks a vacant site.
//! We map species to dense `u8` ids so that a lattice cell is one byte;
//! [`SpeciesSet`] owns the id ↔ name mapping and id 0 is always `*`.

use std::fmt;

/// A particle type, identified by its dense id within a [`SpeciesSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Species(pub u8);

/// The vacant-site marker `*`, always id 0.
pub const VACANT: Species = Species(0);

impl Species {
    /// The lattice state id for this species.
    pub fn id(self) -> u8 {
        self.0
    }

    /// True if this is the vacant marker.
    pub fn is_vacant(self) -> bool {
        self == VACANT
    }
}

impl fmt::Display for Species {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A named, ordered set of species: the domain `D`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpeciesSet {
    names: Vec<String>,
}

impl SpeciesSet {
    /// Build a species set. The first name must be `"*"` (vacant).
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty, the first entry is not `"*"`, names
    /// repeat, or there are more than 256 species.
    pub fn new<S: AsRef<str>>(names: &[S]) -> Self {
        assert!(!names.is_empty(), "species set must not be empty");
        assert_eq!(
            names[0].as_ref(),
            "*",
            "species id 0 must be the vacant marker '*'"
        );
        assert!(names.len() <= 256, "at most 256 species fit in a u8 id");
        let names: Vec<String> = names.iter().map(|s| s.as_ref().to_owned()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b, "duplicate species name {a:?}");
            }
        }
        SpeciesSet { names }
    }

    /// Number of species including `*`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Never true: `*` is always present.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Look up a species by name.
    pub fn get(&self, name: &str) -> Option<Species> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Species(i as u8))
    }

    /// Look up a species by name, panicking on unknown names.
    ///
    /// # Panics
    ///
    /// Panics if the name is not in the set.
    pub fn species(&self, name: &str) -> Species {
        self.get(name)
            .unwrap_or_else(|| panic!("unknown species {name:?}"))
    }

    /// Name of a species.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn name(&self, species: Species) -> &str {
        &self.names[species.0 as usize]
    }

    /// True if `species` is a valid id in this set.
    pub fn contains(&self, species: Species) -> bool {
        (species.0 as usize) < self.names.len()
    }

    /// Iterate all species in id order.
    pub fn iter(&self) -> impl Iterator<Item = Species> + '_ {
        (0..self.names.len() as u8).map(Species)
    }

    /// Default single-character glyphs for rendering: `.` for vacant, the
    /// first character of each name otherwise.
    pub fn glyphs(&self) -> Vec<char> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                if i == 0 {
                    '.'
                } else {
                    n.chars().next().unwrap_or('?')
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_id() {
        let set = SpeciesSet::new(&["*", "CO", "O"]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.species("*"), VACANT);
        assert_eq!(set.species("CO"), Species(1));
        assert_eq!(set.species("O"), Species(2));
        assert_eq!(set.name(Species(1)), "CO");
        assert!(set.get("N2").is_none());
    }

    #[test]
    fn vacant_is_id_zero() {
        assert!(VACANT.is_vacant());
        assert!(!Species(1).is_vacant());
        assert_eq!(VACANT.id(), 0);
    }

    #[test]
    #[should_panic(expected = "vacant marker")]
    fn first_species_must_be_star() {
        SpeciesSet::new(&["CO", "*"]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        SpeciesSet::new(&["*", "CO", "CO"]);
    }

    #[test]
    #[should_panic(expected = "unknown species")]
    fn unknown_species_panics() {
        SpeciesSet::new(&["*"]).species("Xe");
    }

    #[test]
    fn iter_visits_all() {
        let set = SpeciesSet::new(&["*", "A", "B"]);
        let ids: Vec<u8> = set.iter().map(|s| s.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn glyphs_use_first_char() {
        let set = SpeciesSet::new(&["*", "CO", "O"]);
        assert_eq!(set.glyphs(), vec!['.', 'C', 'O']);
    }

    #[test]
    fn contains_checks_range() {
        let set = SpeciesSet::new(&["*", "A"]);
        assert!(set.contains(Species(1)));
        assert!(!set.contains(Species(2)));
    }
}
