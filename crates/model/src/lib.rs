//! Species, reaction types, rates and concrete surface-reaction models.
//!
//! This crate implements the mathematical model of the paper's §2:
//!
//! - a finite domain `D` of particle types ([`Species`], [`SpeciesSet`]),
//!   conventionally containing `*` (vacant) as id 0;
//! - reaction types as functions yielding collections of
//!   `(site, source, target)` triples ([`Transform`], [`ReactionType`]) with
//!   translation-invariant neighborhoods;
//! - rate constants, optionally from an Arrhenius expression
//!   ([`rates::arrhenius`]);
//! - a [`Model`] bundling a species set with its reaction types, plus a
//!   [`ModelBuilder`] DSL.
//!
//! The [`library`] module contains the concrete chemistry used by the paper's
//! evaluation: the ZGB CO-oxidation model (Table I), the Kuzovkov/Kortlüke
//! Pt(100) reconstruction model whose coverage oscillations drive Figs 8–10,
//! plus the diffusion, single-file and Ising models referenced in §4.

#![warn(missing_docs)]

pub mod builder;
pub mod library;
pub mod model;
pub mod pattern;
pub mod rates;
pub mod reaction;
pub mod species;

pub use builder::ModelBuilder;
pub use model::Model;
pub use pattern::Transform;
pub use reaction::ReactionType;
pub use species::{Species, SpeciesSet, VACANT};
