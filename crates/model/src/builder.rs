//! A small DSL for assembling models.
//!
//! ```
//! use psr_model::ModelBuilder;
//!
//! let model = ModelBuilder::new(&["*", "A", "B"])
//!     .reaction("A ads", 1.0, |r| {
//!         r.site((0, 0), "*", "A");
//!     })
//!     .reaction("A+B annihilate", 0.5, |r| {
//!         r.site((0, 0), "A", "*").site((1, 0), "B", "*");
//!     })
//!     .build();
//! assert_eq!(model.num_reactions(), 2);
//! ```

use crate::model::Model;
use crate::pattern::Transform;
use crate::reaction::ReactionType;
use crate::species::SpeciesSet;
use psr_lattice::Offset;

/// Builder for a [`Model`].
#[derive(Debug)]
pub struct ModelBuilder {
    species: SpeciesSet,
    reactions: Vec<ReactionType>,
}

/// Builder for one reaction's transform list (see [`ModelBuilder::reaction`]).
#[derive(Debug)]
pub struct ReactionBuilder<'a> {
    species: &'a SpeciesSet,
    transforms: Vec<Transform>,
}

impl ReactionBuilder<'_> {
    /// Add a transform: at `offset` relative to the anchor, require species
    /// named `src` and produce species named `tgt`.
    ///
    /// # Panics
    ///
    /// Panics on unknown species names.
    pub fn site(&mut self, offset: (i32, i32), src: &str, tgt: &str) -> &mut Self {
        self.transforms.push(Transform::new(
            Offset::new(offset.0, offset.1),
            self.species.species(src),
            self.species.species(tgt),
        ));
        self
    }
}

impl ModelBuilder {
    /// Start a builder with the given species names (first must be `"*"`).
    pub fn new<S: AsRef<str>>(species: &[S]) -> Self {
        ModelBuilder {
            species: SpeciesSet::new(species),
            reactions: Vec::new(),
        }
    }

    /// The species set being built against.
    pub fn species(&self) -> &SpeciesSet {
        &self.species
    }

    /// Add a reaction type; configure its transforms in the closure.
    pub fn reaction(
        mut self,
        name: impl Into<String>,
        rate: f64,
        configure: impl FnOnce(&mut ReactionBuilder<'_>),
    ) -> Self {
        let mut rb = ReactionBuilder {
            species: &self.species,
            transforms: Vec::new(),
        };
        configure(&mut rb);
        self.reactions
            .push(ReactionType::new(name, rb.transforms, rate));
        self
    }

    /// Add all four 90°-rotations of a reaction as separate types named
    /// `"{name}[q]"`, each with the given rate.
    ///
    /// This is how Table I's four `RtCO+O` versions arise from one pattern.
    pub fn reaction_rotations(
        mut self,
        name: &str,
        rate: f64,
        rotations: u32,
        configure: impl FnOnce(&mut ReactionBuilder<'_>),
    ) -> Self {
        assert!(
            (1..=4).contains(&rotations),
            "rotations must be between 1 and 4"
        );
        let mut rb = ReactionBuilder {
            species: &self.species,
            transforms: Vec::new(),
        };
        configure(&mut rb);
        for q in 0..rotations {
            let rotated: Vec<Transform> = rb.transforms.iter().map(|t| t.rotated(q)).collect();
            self.reactions
                .push(ReactionType::new(format!("{name}[{q}]"), rotated, rate));
        }
        self
    }

    /// Add a prebuilt reaction type.
    pub fn reaction_type(mut self, rt: ReactionType) -> Self {
        self.reactions.push(rt);
        self
    }

    /// Finish and validate the model.
    pub fn build(self) -> Model {
        Model::new(self.species, self.reactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_reactions_with_named_species() {
        let m = ModelBuilder::new(&["*", "X"])
            .reaction("X ads", 2.0, |r| {
                r.site((0, 0), "*", "X");
            })
            .build();
        assert_eq!(m.num_reactions(), 1);
        assert_eq!(m.total_rate(), 2.0);
        assert_eq!(m.reaction(0).arity(), 1);
    }

    #[test]
    fn rotations_generate_variants() {
        let m = ModelBuilder::new(&["*", "A"])
            .reaction_rotations("pair", 1.0, 4, |r| {
                r.site((0, 0), "*", "A").site((1, 0), "*", "A");
            })
            .build();
        assert_eq!(m.num_reactions(), 4);
        assert_eq!(m.reaction_index("pair[0]"), Some(0));
        assert_eq!(m.reaction_index("pair[3]"), Some(3));
        // Rotation 1 should touch (0,1).
        let nb = m.reaction(1).neighborhood();
        assert!(nb.offsets().contains(&psr_lattice::Offset::new(0, 1)));
    }

    #[test]
    #[should_panic(expected = "unknown species")]
    fn unknown_species_in_reaction_panics() {
        ModelBuilder::new(&["*"]).reaction("bad", 1.0, |r| {
            r.site((0, 0), "*", "Z");
        });
    }

    #[test]
    #[should_panic(expected = "between 1 and 4")]
    fn invalid_rotation_count_panics() {
        ModelBuilder::new(&["*", "A"]).reaction_rotations("p", 1.0, 5, |r| {
            r.site((0, 0), "*", "A");
        });
    }
}
