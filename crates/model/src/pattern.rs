//! Transforms: the `(site, source, target)` triples of §2.
//!
//! A reaction type applied at a site `s` yields a collection of triples
//! `t = (t.site, t.src, t.tg)`. We store the triples with *offsets* relative
//! to `s` so that the collection is translation invariant by construction.

use crate::species::Species;
use psr_lattice::Offset;

/// One `(offset, source, target)` triple of a reaction pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Transform {
    /// Site offset relative to the anchor site `s`.
    pub offset: Offset,
    /// Required occupant for the reaction to be enabled (`t.src`).
    pub src: Species,
    /// Occupant after execution (`t.tg`).
    pub tgt: Species,
}

impl Transform {
    /// Construct a transform.
    pub fn new(offset: Offset, src: Species, tgt: Species) -> Self {
        Transform { offset, src, tgt }
    }

    /// A transform at the anchor site itself.
    pub fn at_origin(src: Species, tgt: Species) -> Self {
        Transform::new(Offset::ZERO, src, tgt)
    }

    /// Rotate the transform's offset by 90° CCW `quarter_turns` times.
    ///
    /// Generates the orientation versions of a pattern: Table I lists four
    /// rotations of the CO+O pattern and two of the O2 pattern.
    pub fn rotated(self, quarter_turns: u32) -> Self {
        Transform {
            offset: self.offset.rotated(quarter_turns),
            ..self
        }
    }
}

/// Rotate a whole pattern.
pub fn rotate_pattern(transforms: &[Transform], quarter_turns: u32) -> Vec<Transform> {
    transforms
        .iter()
        .map(|t| t.rotated(quarter_turns))
        .collect()
}

/// The distinct rotations of a pattern (1, 2, or 4 depending on symmetry).
///
/// The O2 adsorption pattern `{(0,0), (1,0)}` has only two distinct
/// orientations because the pattern is symmetric under reversal *only when
/// both triples are identical up to position*; Table I gets two `RtO2`
/// versions and four `RtCO+O` versions. This helper returns rotations with
/// duplicates (as unordered triple sets) removed, matching that counting.
pub fn distinct_rotations(transforms: &[Transform]) -> Vec<Vec<Transform>> {
    let mut seen: Vec<Vec<Transform>> = Vec::new();
    for q in 0..4 {
        let mut rot = rotate_pattern(transforms, q);
        rot.sort_by_key(|t| (t.offset, t.src, t.tgt));
        if !seen.contains(&rot) {
            seen.push(rot);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::{Species, VACANT};

    const CO: Species = Species(1);
    const O: Species = Species(2);

    #[test]
    fn rotation_moves_offset() {
        let t = Transform::new(Offset::new(1, 0), VACANT, O);
        assert_eq!(t.rotated(1).offset, Offset::new(0, 1));
        assert_eq!(t.rotated(2).offset, Offset::new(-1, 0));
        assert_eq!(t.rotated(0), t);
    }

    #[test]
    fn o2_pattern_has_two_distinct_rotations() {
        // O2 adsorption: both sites get the same (src=*, tgt=O) triple, so
        // rotating by 180° yields the same unordered triple set shifted —
        // wait, it yields offsets {0,(-1,0)} vs {0,(1,0)}: distinct anchors.
        // Table I counts two versions: (1,0) and (0,1); the (-1,0) and
        // (0,-1) rotations are translations of those, which our anchor-based
        // counting distinguishes. The physically deduplicated count is
        // handled in the ZGB constructor; here all four anchor rotations of
        // an asymmetric pair are distinct.
        let pattern = vec![
            Transform::at_origin(VACANT, O),
            Transform::new(Offset::new(1, 0), VACANT, O),
        ];
        let rots = distinct_rotations(&pattern);
        assert_eq!(rots.len(), 4);
    }

    #[test]
    fn symmetric_single_site_pattern_has_one_rotation() {
        let pattern = vec![Transform::at_origin(VACANT, CO)];
        assert_eq!(distinct_rotations(&pattern).len(), 1);
    }

    #[test]
    fn asymmetric_pair_has_four_rotations() {
        let pattern = vec![
            Transform::at_origin(CO, VACANT),
            Transform::new(Offset::new(1, 0), O, VACANT),
        ];
        assert_eq!(distinct_rotations(&pattern).len(), 4);
    }
}
