//! Rate constants.
//!
//! The paper (§2): each reaction type has a rate constant
//! `k = ν · exp(−E / (k_B · T))` — the Arrhenius expression with activation
//! energy `E`, pre-exponential factor `ν`, Boltzmann constant `k_B` and
//! temperature `T`.

/// Boltzmann constant in eV/K.
pub const BOLTZMANN_EV: f64 = 8.617_333_262e-5;

/// Arrhenius rate constant.
///
/// * `prefactor` — `ν`, in 1/time (typically 10¹²–10¹³ s⁻¹ for surface
///   processes).
/// * `activation_energy_ev` — `E` in eV.
/// * `temperature_k` — `T` in Kelvin.
///
/// # Panics
///
/// Panics if the prefactor is negative or the temperature is not positive.
pub fn arrhenius(prefactor: f64, activation_energy_ev: f64, temperature_k: f64) -> f64 {
    assert!(
        prefactor >= 0.0 && prefactor.is_finite(),
        "prefactor must be >= 0"
    );
    assert!(
        temperature_k > 0.0 && temperature_k.is_finite(),
        "temperature must be positive"
    );
    prefactor * (-activation_energy_ev / (BOLTZMANN_EV * temperature_k)).exp()
}

/// A temperature-dependent rate specification that can be evaluated at a
/// temperature, or a fixed constant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateSpec {
    /// A fixed rate constant (most of the paper's experiments use
    /// dimensionless rates).
    Constant(f64),
    /// An Arrhenius expression `ν · exp(−E / k_B T)`.
    Arrhenius {
        /// Pre-exponential factor `ν` (1/time).
        prefactor: f64,
        /// Activation energy `E` in eV.
        activation_energy_ev: f64,
    },
}

impl RateSpec {
    /// Evaluate the rate at temperature `temperature_k` (ignored for
    /// [`RateSpec::Constant`]).
    pub fn at(&self, temperature_k: f64) -> f64 {
        match *self {
            RateSpec::Constant(k) => k,
            RateSpec::Arrhenius {
                prefactor,
                activation_energy_ev,
            } => arrhenius(prefactor, activation_energy_ev, temperature_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_activation_energy_gives_prefactor() {
        assert_eq!(arrhenius(1e13, 0.0, 300.0), 1e13);
    }

    #[test]
    fn rate_increases_with_temperature() {
        let low = arrhenius(1e13, 1.0, 300.0);
        let high = arrhenius(1e13, 1.0, 600.0);
        assert!(high > low);
    }

    #[test]
    fn known_value() {
        // E = 1 eV, T such that k_B T = 0.05 eV => exp(-20).
        let t = 1.0 / (BOLTZMANN_EV * 20.0);
        let k = arrhenius(1.0, 1.0, t);
        assert!((k - (-20.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn rate_spec_evaluation() {
        assert_eq!(RateSpec::Constant(2.5).at(1000.0), 2.5);
        let spec = RateSpec::Arrhenius {
            prefactor: 1e12,
            activation_energy_ev: 0.8,
        };
        assert!((spec.at(500.0) - arrhenius(1e12, 0.8, 500.0)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn zero_temperature_panics() {
        arrhenius(1.0, 1.0, 0.0);
    }
}
