//! Reaction types: named, rated, translation-invariant transformations.

use crate::pattern::Transform;
use psr_lattice::{Lattice, Neighborhood, Site};

/// A reaction type `Rt` (paper §2): a set of transforms applied relative to
/// an anchor site, with a rate constant `k`.
#[derive(Clone, Debug, PartialEq)]
pub struct ReactionType {
    name: String,
    transforms: Vec<Transform>,
    rate: f64,
}

impl ReactionType {
    /// Create a reaction type.
    ///
    /// # Panics
    ///
    /// Panics if:
    /// - `transforms` is empty,
    /// - two transforms target the same offset (the triple collection must
    ///   be a function of the site),
    /// - no transform anchors at the origin (paper §2 property 1:
    ///   `s ∈ Nb(s)`),
    /// - `rate` is negative or non-finite.
    pub fn new(name: impl Into<String>, transforms: Vec<Transform>, rate: f64) -> Self {
        let name = name.into();
        assert!(
            !transforms.is_empty(),
            "reaction type {name:?} needs at least one transform"
        );
        assert!(
            transforms
                .iter()
                .any(|t| t.offset == psr_lattice::Offset::ZERO),
            "reaction type {name:?} must include the anchor site (offset 0)"
        );
        for (i, a) in transforms.iter().enumerate() {
            for b in &transforms[i + 1..] {
                assert_ne!(
                    a.offset, b.offset,
                    "reaction type {name:?} has two transforms at the same offset"
                );
            }
        }
        assert!(
            rate.is_finite() && rate >= 0.0,
            "reaction type {name:?} rate must be finite and >= 0, got {rate}"
        );
        ReactionType {
            name,
            transforms,
            rate,
        }
    }

    /// The reaction type's name (e.g. `"CO adsorption"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The transforms relative to the anchor site.
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// The rate constant `k`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Return a copy with a different rate.
    pub fn with_rate(&self, rate: f64) -> Self {
        ReactionType::new(self.name.clone(), self.transforms.clone(), rate)
    }

    /// The neighborhood `Nb_Rt` as a stencil of offsets.
    pub fn neighborhood(&self) -> Neighborhood {
        Neighborhood::new(self.transforms.iter().map(|t| t.offset).collect())
    }

    /// Number of sites touched.
    pub fn arity(&self) -> usize {
        self.transforms.len()
    }

    /// True if the source pattern matches at `site` (paper §2: enabled).
    #[inline]
    pub fn is_enabled(&self, lattice: &Lattice, site: Site) -> bool {
        let dims = lattice.dims();
        self.transforms
            .iter()
            .all(|t| lattice.get(dims.translate(site, t.offset)) == t.src.id())
    }

    /// Execute the reaction at `site`, assuming it is enabled.
    ///
    /// Writes the target pattern and appends `(site, old, new)` records to
    /// `changes` (for coverage tracking / undo). Callers must check
    /// [`is_enabled`](Self::is_enabled) first; in debug builds this is
    /// asserted.
    #[inline]
    pub fn execute(&self, lattice: &mut Lattice, site: Site, changes: &mut Vec<(Site, u8, u8)>) {
        debug_assert!(
            self.is_enabled(lattice, site),
            "executing disabled reaction {:?} at site {}",
            self.name,
            site.0
        );
        let dims = lattice.dims();
        for t in &self.transforms {
            let target = dims.translate(site, t.offset);
            let old = lattice.set(target, t.tgt.id());
            changes.push((target, old, t.tgt.id()));
        }
    }

    /// Execute and return the changes (allocating convenience wrapper).
    pub fn execute_collect(&self, lattice: &mut Lattice, site: Site) -> Vec<(Site, u8, u8)> {
        let mut changes = Vec::with_capacity(self.transforms.len());
        self.execute(lattice, site, &mut changes);
        changes
    }

    /// If enabled at `site`, execute and return true.
    pub fn try_execute(
        &self,
        lattice: &mut Lattice,
        site: Site,
        changes: &mut Vec<(Site, u8, u8)>,
    ) -> bool {
        if self.is_enabled(lattice, site) {
            self.execute(lattice, site, changes);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::{Species, VACANT};
    use psr_lattice::{Dims, Offset};

    const CO: Species = Species(1);
    const O: Species = Species(2);

    fn co_adsorption() -> ReactionType {
        ReactionType::new("CO ads", vec![Transform::at_origin(VACANT, CO)], 1.0)
    }

    fn co_o_reaction() -> ReactionType {
        ReactionType::new(
            "CO+O",
            vec![
                Transform::at_origin(CO, VACANT),
                Transform::new(Offset::new(1, 0), O, VACANT),
            ],
            2.0,
        )
    }

    #[test]
    fn enabledness_matches_source_pattern() {
        let d = Dims::new(4, 4);
        let mut l = Lattice::filled(d, 0);
        let rt = co_o_reaction();
        let s = d.site_at(1, 1);
        assert!(!rt.is_enabled(&l, s));
        l.set(s, CO.id());
        assert!(!rt.is_enabled(&l, s));
        l.set(d.site_at(2, 1), O.id());
        assert!(rt.is_enabled(&l, s));
    }

    #[test]
    fn execute_applies_target_pattern() {
        let d = Dims::new(4, 4);
        let mut l = Lattice::filled(d, 0);
        let s = d.site_at(0, 0);
        let rt = co_adsorption();
        assert!(rt.is_enabled(&l, s));
        let changes = rt.execute_collect(&mut l, s);
        assert_eq!(l.get(s), CO.id());
        assert_eq!(changes, vec![(s, 0, CO.id())]);
    }

    #[test]
    fn execute_pair_reaction_clears_both_sites() {
        let d = Dims::new(4, 4);
        let mut l = Lattice::filled(d, 0);
        let s = d.site_at(3, 0); // wraps to (0,0) on the right
        l.set(s, CO.id());
        l.set(d.site_at(0, 0), O.id());
        let rt = co_o_reaction();
        assert!(rt.is_enabled(&l, s));
        rt.execute_collect(&mut l, s);
        assert_eq!(l.get(s), 0);
        assert_eq!(l.get(d.site_at(0, 0)), 0);
    }

    #[test]
    fn try_execute_reports_enabledness() {
        let d = Dims::new(2, 2);
        let mut l = Lattice::filled(d, CO.id());
        let mut changes = Vec::new();
        assert!(!co_adsorption().try_execute(&mut l, Site(0), &mut changes));
        assert!(changes.is_empty());
        l.set(Site(0), 0);
        assert!(co_adsorption().try_execute(&mut l, Site(0), &mut changes));
        assert_eq!(changes.len(), 1);
    }

    #[test]
    fn neighborhood_derived_from_offsets() {
        let nb = co_o_reaction().neighborhood();
        assert_eq!(nb.len(), 2);
        assert!(nb.offsets().contains(&Offset::ZERO));
        assert!(nb.offsets().contains(&Offset::new(1, 0)));
    }

    #[test]
    fn with_rate_changes_only_rate() {
        let rt = co_adsorption().with_rate(5.0);
        assert_eq!(rt.rate(), 5.0);
        assert_eq!(rt.name(), "CO ads");
        assert_eq!(rt.arity(), 1);
    }

    #[test]
    #[should_panic(expected = "anchor site")]
    fn missing_origin_panics() {
        ReactionType::new(
            "bad",
            vec![Transform::new(Offset::new(1, 0), VACANT, CO)],
            1.0,
        );
    }

    #[test]
    #[should_panic(expected = "same offset")]
    fn duplicate_offsets_panic() {
        ReactionType::new(
            "bad",
            vec![
                Transform::at_origin(VACANT, CO),
                Transform::at_origin(VACANT, O),
            ],
            1.0,
        );
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn negative_rate_panics() {
        ReactionType::new("bad", vec![Transform::at_origin(VACANT, CO)], -1.0);
    }

    #[test]
    #[should_panic(expected = "at least one transform")]
    fn empty_transforms_panic() {
        ReactionType::new("bad", vec![], 1.0);
    }
}
