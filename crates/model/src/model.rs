//! The complete simulation model: species + reaction types.

use crate::reaction::ReactionType;
use crate::species::SpeciesSet;
use psr_lattice::{Lattice, Neighborhood, Site};

/// A surface-reaction model: the domain `D` and the set of reaction types
/// `T` with their rates (paper §2).
#[derive(Clone, Debug)]
pub struct Model {
    species: SpeciesSet,
    reactions: Vec<ReactionType>,
    total_rate: f64,
}

impl Model {
    /// Bundle species and reaction types into a model.
    ///
    /// # Panics
    ///
    /// Panics if there are no reaction types, if any transform references a
    /// species outside the set, or if the total rate is zero.
    pub fn new(species: SpeciesSet, reactions: Vec<ReactionType>) -> Self {
        assert!(
            !reactions.is_empty(),
            "a model needs at least one reaction type"
        );
        for rt in &reactions {
            for t in rt.transforms() {
                assert!(
                    species.contains(t.src) && species.contains(t.tgt),
                    "reaction {:?} references a species outside the set",
                    rt.name()
                );
            }
        }
        let total_rate: f64 = reactions.iter().map(|r| r.rate()).sum();
        assert!(
            total_rate > 0.0,
            "total rate K must be positive (all reaction rates are zero)"
        );
        Model {
            species,
            reactions,
            total_rate,
        }
    }

    /// The domain `D`.
    pub fn species(&self) -> &SpeciesSet {
        &self.species
    }

    /// The reaction types, in declaration order.
    pub fn reactions(&self) -> &[ReactionType] {
        &self.reactions
    }

    /// Number of reaction types `|T|`.
    pub fn num_reactions(&self) -> usize {
        self.reactions.len()
    }

    /// A reaction type by index.
    pub fn reaction(&self, index: usize) -> &ReactionType {
        &self.reactions[index]
    }

    /// `K = Σ_i k_i`, the sum of all reaction-type rate constants (paper §3).
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// The rate constants in reaction order (weights for `k_i / K` sampling).
    pub fn rate_weights(&self) -> Vec<f64> {
        self.reactions.iter().map(|r| r.rate()).collect()
    }

    /// Union of all reaction neighborhoods — the stencil that determines
    /// conflicts and hence partitions (paper §5).
    pub fn combined_neighborhood(&self) -> Neighborhood {
        let mut nb = Neighborhood::origin();
        for rt in &self.reactions {
            nb = nb.union(&rt.neighborhood());
        }
        nb
    }

    /// Largest L1 radius over all reaction neighborhoods.
    pub fn interaction_radius(&self) -> u32 {
        self.combined_neighborhood().radius()
    }

    /// Largest L1 distance from an anchor site to any site one of its
    /// patterns reads or writes — the "pattern extent" of the model.
    ///
    /// A reaction anchored at `s` only inspects sites within this distance
    /// of `s`, so changing site `x` can only alter the enabledness of
    /// anchors within `max_pattern_extent()` of `x`. This is the radius to
    /// pass to `ChangeJournal::affected_sites` / `affected_sites` in
    /// `psr-lattice`. Numerically equal to [`interaction_radius`]
    /// (Self::interaction_radius) — both are the max L1 offset norm — but
    /// kept as a separate query because the former is about partition
    /// conflicts and this one is about propensity-update stencils.
    pub fn max_pattern_extent(&self) -> u32 {
        self.reactions
            .iter()
            .map(|rt| rt.neighborhood().radius())
            .max()
            .unwrap_or(0)
    }

    /// The update stencil: offsets `o` such that changing site `x` may
    /// change the enabledness of an anchor at `x + o`.
    ///
    /// An anchor `s` reads site `s + t.offset` for each transform `t`, so
    /// the anchors reading `x` are exactly `{x − t.offset}` — the negated
    /// transform offsets, deduplicated across all reaction types. Always
    /// contains the origin (every pattern includes its anchor).
    pub fn update_stencil(&self) -> Neighborhood {
        Neighborhood::new(
            self.reactions
                .iter()
                .flat_map(|rt| rt.transforms().iter().map(|t| t.offset.negated()))
                .collect(),
        )
    }

    /// Visit every reaction type enabled at `site`, in declaration order,
    /// without allocating — the hot-path form of [`enabled_at`]
    /// (Self::enabled_at).
    #[inline]
    pub fn for_each_enabled(
        &self,
        lattice: &Lattice,
        site: Site,
        mut f: impl FnMut(usize, &ReactionType),
    ) {
        for (i, rt) in self.reactions.iter().enumerate() {
            if rt.is_enabled(lattice, site) {
                f(i, rt);
            }
        }
    }

    /// Bitmask of reaction indices enabled at `site` (bit `i` ↔ reaction
    /// `i`); allocation-free for models with at most 64 reaction types.
    ///
    /// # Panics
    ///
    /// Panics if the model has more than 64 reaction types.
    #[inline]
    pub fn enabled_mask_at(&self, lattice: &Lattice, site: Site) -> u64 {
        assert!(
            self.reactions.len() <= 64,
            "enabled_mask_at supports at most 64 reaction types"
        );
        let mut mask = 0u64;
        self.for_each_enabled(lattice, site, |i, _| mask |= 1 << i);
        mask
    }

    /// Indices of reaction types enabled at `site` (allocating convenience
    /// wrapper over [`for_each_enabled`](Self::for_each_enabled), kept for
    /// tests and cold paths).
    pub fn enabled_at(&self, lattice: &Lattice, site: Site) -> Vec<usize> {
        let mut ids = Vec::new();
        self.for_each_enabled(lattice, site, |i, _| ids.push(i));
        ids
    }

    /// Sum of rates of reactions enabled anywhere on the lattice.
    ///
    /// This is the total propensity `Σ kSS'` of the Master Equation (Eq. 1);
    /// O(N·|T|) — used by VSSM initialisation, tests and the exact solver,
    /// not in inner loops.
    pub fn total_propensity(&self, lattice: &Lattice) -> f64 {
        let mut total = 0.0;
        for site in lattice.dims().iter_sites() {
            for rt in &self.reactions {
                if rt.is_enabled(lattice, site) {
                    total += rt.rate();
                }
            }
        }
        total
    }

    /// Find a reaction type index by name.
    pub fn reaction_index(&self, name: &str) -> Option<usize> {
        self.reactions.iter().position(|r| r.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Transform;
    use crate::species::{Species, VACANT};
    use psr_lattice::{Dims, Offset};

    fn toy_model() -> Model {
        let species = SpeciesSet::new(&["*", "A", "B"]);
        let a = Species(1);
        let b = Species(2);
        let ads = ReactionType::new("A ads", vec![Transform::at_origin(VACANT, a)], 1.0);
        let pair = ReactionType::new(
            "A+B",
            vec![
                Transform::at_origin(a, VACANT),
                Transform::new(Offset::new(1, 0), b, VACANT),
            ],
            3.0,
        );
        Model::new(species, vec![ads, pair])
    }

    #[test]
    fn total_rate_is_sum_of_constants() {
        let m = toy_model();
        assert_eq!(m.total_rate(), 4.0);
        assert_eq!(m.rate_weights(), vec![1.0, 3.0]);
        assert_eq!(m.num_reactions(), 2);
    }

    #[test]
    fn combined_neighborhood_unions_patterns() {
        let m = toy_model();
        let nb = m.combined_neighborhood();
        assert_eq!(nb.len(), 2);
        assert_eq!(m.interaction_radius(), 1);
    }

    #[test]
    fn max_pattern_extent_matches_interaction_radius() {
        let m = toy_model();
        assert_eq!(m.max_pattern_extent(), 1);
        assert_eq!(m.max_pattern_extent(), m.interaction_radius());
    }

    #[test]
    fn update_stencil_negates_transform_offsets() {
        let m = toy_model();
        let stencil = m.update_stencil();
        // Transform offsets are {0, (1,0)} → stencil {0, (-1,0)}.
        assert!(stencil.offsets().contains(&Offset::ZERO));
        assert!(stencil.offsets().contains(&Offset::new(-1, 0)));
        assert_eq!(stencil.len(), 2);
    }

    #[test]
    fn enabled_at_lists_reactions() {
        let m = toy_model();
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, 0);
        let s = d.site_at(1, 1);
        assert_eq!(m.enabled_at(&l, s), vec![0]); // only adsorption on vacant
        l.set(s, 1);
        l.set(d.site_at(2, 1), 2);
        assert_eq!(m.enabled_at(&l, s), vec![1]); // only the A+B reaction
    }

    #[test]
    fn for_each_enabled_agrees_with_enabled_at() {
        let m = toy_model();
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, 0);
        l.set(d.site_at(1, 1), 1);
        l.set(d.site_at(2, 1), 2);
        for s in d.iter_sites() {
            let mut visited = Vec::new();
            m.for_each_enabled(&l, s, |i, rt| {
                assert_eq!(m.reaction(i).name(), rt.name());
                visited.push(i);
            });
            assert_eq!(visited, m.enabled_at(&l, s), "site {}", s.0);
            let mask = m.enabled_mask_at(&l, s);
            for i in 0..m.num_reactions() {
                assert_eq!(mask & (1 << i) != 0, visited.contains(&i));
            }
        }
    }

    #[test]
    fn total_propensity_counts_all_sites() {
        let m = toy_model();
        let d = Dims::new(2, 2);
        let l = Lattice::filled(d, 0);
        // All 4 sites vacant: adsorption (k=1) enabled everywhere, pair not.
        assert_eq!(m.total_propensity(&l), 4.0);
    }

    #[test]
    fn reaction_lookup_by_name() {
        let m = toy_model();
        assert_eq!(m.reaction_index("A+B"), Some(1));
        assert_eq!(m.reaction_index("nope"), None);
        assert_eq!(m.reaction(0).name(), "A ads");
    }

    #[test]
    #[should_panic(expected = "outside the set")]
    fn species_out_of_range_panics() {
        let species = SpeciesSet::new(&["*"]);
        let bad = ReactionType::new("bad", vec![Transform::at_origin(VACANT, Species(9))], 1.0);
        Model::new(species, vec![bad]);
    }

    #[test]
    #[should_panic(expected = "at least one reaction")]
    fn empty_model_panics() {
        Model::new(SpeciesSet::new(&["*"]), vec![]);
    }
}
