//! Ising model with Glauber (spin-flip) dynamics, expressed as reaction types.
//!
//! The paper (§4) notes that the plain NDCA "gives degenerate results for
//! some systems (Ising models, Single-File models, …)" — Vichniac's classic
//! observation that synchronous updates of the Ising model converge to
//! artificial antiferromagnetic checkerboards. To demonstrate this we need
//! the Ising model inside the same reaction-type framework.
//!
//! A spin-flip's rate depends on the spins of the four von Neumann
//! neighbors. Reaction types require an *exact* source pattern, so we
//! enumerate all `2 · 2⁴ = 32` (center, neighborhood) configurations and
//! emit one single-flip reaction type per configuration, with the Glauber
//! rate `k(ΔE) = 1 / (1 + exp(ΔE / k_B T))`.
//!
//! Spins: state 0 (`*`) is down, state 1 (`U`) is up. (The vacant marker
//! doubles as spin-down; the lattice is always fully "occupied".)

use crate::model::Model;
use crate::pattern::Transform;
use crate::reaction::ReactionType;
use crate::species::{Species, SpeciesSet};
use psr_lattice::Offset;

const NEIGHBOR_OFFSETS: [Offset; 4] = [
    Offset::new(1, 0),
    Offset::new(-1, 0),
    Offset::new(0, 1),
    Offset::new(0, -1),
];

/// Build the Glauber-dynamics Ising model at reduced temperature
/// `t = k_B T / J` (coupling `J = 1`).
///
/// # Panics
///
/// Panics unless `t > 0`.
pub fn ising_glauber(t: f64) -> Model {
    assert!(t > 0.0 && t.is_finite(), "temperature must be positive");
    let species = SpeciesSet::new(&["*", "U"]);
    let down = Species(0);
    let up = Species(1);
    let spin = |bit: u32| if bit == 1 { up } else { down };
    let sign = |s: Species| if s == up { 1.0 } else { -1.0 };

    let mut reactions = Vec::with_capacity(32);
    for center_bit in 0..2u32 {
        for mask in 0..16u32 {
            let center = spin(center_bit);
            let flipped = spin(1 - center_bit);
            // ΔE of flipping the center: E = -J Σ s_c s_n, so
            // ΔE = 2 J s_c Σ s_n.
            let neighbor_sum: f64 = (0..4).map(|i| sign(spin((mask >> i) & 1))).sum();
            let delta_e = 2.0 * sign(center) * neighbor_sum;
            let rate = 1.0 / (1.0 + (delta_e / t).exp());
            let mut transforms = vec![Transform::at_origin(center, flipped)];
            for (i, &off) in NEIGHBOR_OFFSETS.iter().enumerate() {
                let nb = spin((mask >> i) & 1);
                // Neighbors are part of the source pattern but unchanged.
                transforms.push(Transform::new(off, nb, nb));
            }
            reactions.push(ReactionType::new(
                format!("flip c={center_bit} nb={mask:04b}"),
                transforms,
                rate,
            ));
        }
    }
    Model::new(species, reactions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::{Dims, Lattice, Site};

    #[test]
    fn has_32_reaction_types() {
        let m = ising_glauber(2.0);
        assert_eq!(m.num_reactions(), 32);
    }

    #[test]
    fn exactly_one_reaction_enabled_per_site() {
        // The 32 patterns partition configuration space: any (center,
        // neighborhood) matches exactly one reaction type.
        let m = ising_glauber(2.0);
        let d = Dims::new(4, 4);
        let mut l = Lattice::filled(d, 0);
        // A scattered configuration.
        for (i, s) in d.iter_sites().enumerate() {
            l.set(s, ((i * 7) % 3 == 0) as u8);
        }
        for s in d.iter_sites() {
            assert_eq!(m.enabled_at(&l, s).len(), 1, "site {}", s.0);
        }
    }

    #[test]
    fn glauber_rates_satisfy_detailed_balance() {
        // k(ΔE) / k(-ΔE) = exp(-ΔE / t).
        let t = 1.7;
        for delta_e in [-8.0f64, -4.0, 0.0, 4.0, 8.0] {
            let k_fwd = 1.0 / (1.0 + (delta_e / t).exp());
            let k_bwd = 1.0 / (1.0 + (-delta_e / t).exp());
            assert!((k_fwd / k_bwd - (-delta_e / t).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn aligned_spin_flips_slowly_at_low_temperature() {
        let m = ising_glauber(0.5);
        let d = Dims::new(3, 3);
        let l = Lattice::filled(d, 1); // all up
        let idx = m.enabled_at(&l, Site(4));
        assert_eq!(idx.len(), 1);
        let rate = m.reaction(idx[0]).rate();
        // ΔE = +8 at t = 0.5 → rate ≈ exp(-16).
        assert!(rate < 1e-6, "rate {rate} should be tiny");
    }

    #[test]
    fn flip_changes_only_center() {
        let m = ising_glauber(2.0);
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, 0);
        let s = Site(4);
        let idx = m.enabled_at(&l, s)[0];
        m.reaction(idx).execute_collect(&mut l, s);
        assert_eq!(l.get(s), 1);
        assert_eq!(l.count(1), 1);
    }
}
