//! The Kuzovkov/Kortlüke Pt(100) surface-reconstruction model (paper §6).
//!
//! The paper compares RSM and L-PNDCA on "the model used by Kuzovkov et al.
//! [J.Chem.Phys. 108, 5571] … the oxidation of CO on a face of
//! Platinum(100)". The Pt(100) top layer exists in two phases — a
//! reconstructed *hex* phase and a bulk-like *1×1 (square)* phase. CO adsorbs
//! on both; O₂ adsorbs dissociatively **only on the square phase**. Adsorbed
//! CO lifts the reconstruction (hex → square); vacant square sites relax
//! back (square → hex). The interplay produces the coverage oscillations the
//! paper's Figs 8–10 compare.
//!
//! **Substitution note (see DESIGN.md):** the paper gives no rate table, so
//! the default [`KuzovkovParams`] were calibrated in this repository until a
//! 100×100 lattice shows sustained global coverage oscillations; figures
//! compare oscillation *preservation and deviation* between algorithms, which
//! is what the paper reports, not absolute periods.
//!
//! Site states (`D`, five values):
//!
//! | id | name    | meaning                       |
//! |----|---------|-------------------------------|
//! | 0  | `*`     | vacant hex site               |
//! | 1  | `COh`   | CO on a hex site              |
//! | 2  | `sq`    | vacant square (1×1) site      |
//! | 3  | `COs`   | CO on a square site           |
//! | 4  | `O`     | O on a square site            |

use crate::builder::ModelBuilder;
use crate::model::Model;
use crate::species::Species;

/// Species ids of the Kuzovkov model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KuzovkovSpecies {
    /// Vacant hex site (id 0, the `*` marker).
    pub hex_vacant: Species,
    /// CO adsorbed on a hex site (id 1).
    pub hex_co: Species,
    /// Vacant square site (id 2).
    pub sq_vacant: Species,
    /// CO adsorbed on a square site (id 3).
    pub sq_co: Species,
    /// O adsorbed on a square site (id 4).
    pub sq_o: Species,
}

/// Canonical species layout.
pub const KUZOVKOV_SPECIES: KuzovkovSpecies = KuzovkovSpecies {
    hex_vacant: Species(0),
    hex_co: Species(1),
    sq_vacant: Species(2),
    sq_co: Species(3),
    sq_o: Species(4),
};

/// Rate constants of the Kuzovkov model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KuzovkovParams {
    /// CO impingement rate `y` (adsorption on any vacant site, both phases).
    pub y_co: f64,
    /// O₂ dissociative adsorption rate per orientation (needs two adjacent
    /// vacant *square* sites).
    pub k_o2: f64,
    /// CO desorption rate (phase-preserving).
    pub k_des: f64,
    /// CO+O → CO₂ surface reaction rate per orientation.
    pub k_react: f64,
    /// Local hex → square transformation rate of a CO-covered hex site.
    pub k_lift: f64,
    /// Relaxation rate of a vacant square site back to hex.
    pub k_relax: f64,
    /// CO hop rate per orientation (phase-preserving hop; CO carries the
    /// local phase state with it — hops between phases keep each site's
    /// phase).
    pub k_diff: f64,
    /// Front-propagation rate of the hex → square transformation: a
    /// CO-covered hex site adjacent to an already-square site converts
    /// (per square neighbor orientation). Kortlüke's model grows the 1×1
    /// phase as fronts, which synchronises the oscillation globally;
    /// 0 disables the term.
    pub k_lift_front: f64,
    /// Front-propagation rate of square → hex relaxation: a vacant square
    /// site adjacent to a hex site relaxes (per hex neighbor orientation).
    /// 0 disables the term.
    pub k_relax_front: f64,
}

impl Default for KuzovkovParams {
    /// Parameters calibrated to oscillate (see `calibrate_kuzovkov`):
    /// sustained global CO/O oscillations with period ≈ 30 time units and
    /// peak-to-trough amplitude ≈ 0.06–0.1 up to 100×100 lattices. The
    /// front-propagation terms are essential at large sizes: with purely
    /// local phase dynamics the regional oscillators dephase and the
    /// global signal averages away.
    fn default() -> Self {
        KuzovkovParams {
            y_co: 0.42,
            k_o2: 0.29,
            k_des: 0.1,
            k_react: 10.0,
            k_lift: 0.2,
            k_relax: 0.05,
            k_diff: 4.0,
            k_lift_front: 1.0,
            k_relax_front: 0.5,
        }
    }
}

/// Build the Kuzovkov Pt(100) model.
pub fn kuzovkov_model(p: KuzovkovParams) -> Model {
    let mut b = ModelBuilder::new(&["*", "COh", "sq", "COs", "O"])
        // CO adsorption on both phases.
        .reaction("CO ads hex", p.y_co, |r| {
            r.site((0, 0), "*", "COh");
        })
        .reaction("CO ads sq", p.y_co, |r| {
            r.site((0, 0), "sq", "COs");
        })
        // CO desorption, phase preserving.
        .reaction("CO des hex", p.k_des, |r| {
            r.site((0, 0), "COh", "*");
        })
        .reaction("CO des sq", p.k_des, |r| {
            r.site((0, 0), "COs", "sq");
        })
        // O2 dissociative adsorption on two adjacent vacant square sites.
        .reaction_rotations("O2 ads", p.k_o2, 2, |r| {
            r.site((0, 0), "sq", "O").site((1, 0), "sq", "O");
        })
        // CO2 formation: adjacent CO (either phase) + O; both sites empty,
        // phases preserved (square stays square until it relaxes).
        .reaction_rotations("CO2 hex", p.k_react, 4, |r| {
            r.site((0, 0), "COh", "*").site((1, 0), "O", "sq");
        })
        .reaction_rotations("CO2 sq", p.k_react, 4, |r| {
            r.site((0, 0), "COs", "sq").site((1, 0), "O", "sq");
        })
        // Phase dynamics.
        .reaction("lift hex->sq", p.k_lift, |r| {
            r.site((0, 0), "COh", "COs");
        })
        .reaction("relax sq->hex", p.k_relax, |r| {
            r.site((0, 0), "sq", "*");
        });
    // Front propagation of the phase transformations (Kortlüke-style):
    // the transformation is catalysed by an adjacent site already in the
    // target phase, so phase domains grow as fronts.
    if p.k_lift_front > 0.0 {
        for (suffix, nb_src, nb_tgt) in [("sq", "sq", "sq"), ("COs", "COs", "COs"), ("O", "O", "O")]
        {
            b = b.reaction_rotations(&format!("lift front {suffix}"), p.k_lift_front, 4, |r| {
                r.site((0, 0), "COh", "COs").site((1, 0), nb_src, nb_tgt);
            });
        }
    }
    if p.k_relax_front > 0.0 {
        for (suffix, nb_src, nb_tgt) in [("hex", "*", "*"), ("COh", "COh", "COh")] {
            b = b.reaction_rotations(&format!("relax front {suffix}"), p.k_relax_front, 4, |r| {
                r.site((0, 0), "sq", "*").site((1, 0), nb_src, nb_tgt);
            });
        }
    }
    // CO diffusion: hop to an adjacent vacant site; each site keeps its
    // phase, the CO moves. Four source/target phase combinations.
    if p.k_diff > 0.0 {
        b = b
            .reaction_rotations("CO hop h->h", p.k_diff, 4, |r| {
                r.site((0, 0), "COh", "*").site((1, 0), "*", "COh");
            })
            .reaction_rotations("CO hop h->s", p.k_diff, 4, |r| {
                r.site((0, 0), "COh", "*").site((1, 0), "sq", "COs");
            })
            .reaction_rotations("CO hop s->h", p.k_diff, 4, |r| {
                r.site((0, 0), "COs", "sq").site((1, 0), "*", "COh");
            })
            .reaction_rotations("CO hop s->s", p.k_diff, 4, |r| {
                r.site((0, 0), "COs", "sq").site((1, 0), "sq", "COs");
            });
    }
    b.build()
}

/// Total CO coverage (both phases) from a state histogram.
pub fn co_coverage(fractions: &[f64]) -> f64 {
    fractions[KUZOVKOV_SPECIES.hex_co.id() as usize]
        + fractions[KUZOVKOV_SPECIES.sq_co.id() as usize]
}

/// O coverage from a state histogram.
pub fn o_coverage(fractions: &[f64]) -> f64 {
    fractions[KUZOVKOV_SPECIES.sq_o.id() as usize]
}

/// Fraction of the surface in the square (1×1) phase.
pub fn square_phase_fraction(fractions: &[f64]) -> f64 {
    fractions[KUZOVKOV_SPECIES.sq_vacant.id() as usize]
        + fractions[KUZOVKOV_SPECIES.sq_co.id() as usize]
        + fractions[KUZOVKOV_SPECIES.sq_o.id() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::{Dims, Lattice};

    #[test]
    fn reaction_count() {
        // 2 ads + 2 des + 2 O2 + 8 CO2 + lift + relax + 12 lift-front +
        // 8 relax-front + 16 hops = 52 with the calibrated defaults.
        let m = kuzovkov_model(KuzovkovParams::default());
        assert_eq!(m.num_reactions(), 52);
    }

    #[test]
    fn local_only_variant_has_32_reactions() {
        // Disabling the front terms leaves the purely local model:
        // 2 ads + 2 des + 2 O2 + 8 CO2 + lift + relax + 16 hops = 32.
        let m = kuzovkov_model(KuzovkovParams {
            k_lift_front: 0.0,
            k_relax_front: 0.0,
            ..KuzovkovParams::default()
        });
        assert_eq!(m.num_reactions(), 32);
    }

    #[test]
    fn no_diffusion_variant() {
        let m = kuzovkov_model(KuzovkovParams {
            k_diff: 0.0,
            k_lift_front: 0.0,
            k_relax_front: 0.0,
            ..KuzovkovParams::default()
        });
        assert_eq!(m.num_reactions(), 16);
    }

    #[test]
    fn front_lift_requires_square_neighbor() {
        let m = kuzovkov_model(KuzovkovParams::default());
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, KUZOVKOV_SPECIES.hex_co.id());
        let rt = m.reaction(m.reaction_index("lift front sq[0]").expect("exists"));
        let s = d.site_at(0, 0);
        assert!(!rt.is_enabled(&l, s), "no square neighbor yet");
        l.set(d.site_at(1, 0), KUZOVKOV_SPECIES.sq_vacant.id());
        assert!(rt.is_enabled(&l, s));
        rt.execute_collect(&mut l, s);
        assert_eq!(l.get(s), KUZOVKOV_SPECIES.sq_co.id());
        assert_eq!(
            l.get(d.site_at(1, 0)),
            KUZOVKOV_SPECIES.sq_vacant.id(),
            "catalysing neighbor unchanged"
        );
    }

    #[test]
    fn front_relax_requires_hex_neighbor() {
        let m = kuzovkov_model(KuzovkovParams::default());
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, KUZOVKOV_SPECIES.sq_vacant.id());
        let rt = m.reaction(m.reaction_index("relax front hex[0]").expect("exists"));
        let s = d.site_at(0, 0);
        assert!(!rt.is_enabled(&l, s), "no hex neighbor yet");
        l.set(d.site_at(1, 0), KUZOVKOV_SPECIES.hex_vacant.id());
        assert!(rt.is_enabled(&l, s));
        rt.execute_collect(&mut l, s);
        assert_eq!(l.get(s), KUZOVKOV_SPECIES.hex_vacant.id());
    }

    #[test]
    fn o2_requires_square_pair() {
        let m = kuzovkov_model(KuzovkovParams::default());
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, KUZOVKOV_SPECIES.hex_vacant.id());
        let rt = m.reaction(m.reaction_index("O2 ads[0]").expect("exists"));
        let s = d.site_at(0, 0);
        assert!(!rt.is_enabled(&l, s), "hex sites must not adsorb O2");
        l.set(s, KUZOVKOV_SPECIES.sq_vacant.id());
        assert!(!rt.is_enabled(&l, s), "one square site is not enough");
        l.set(d.site_at(1, 0), KUZOVKOV_SPECIES.sq_vacant.id());
        assert!(rt.is_enabled(&l, s));
    }

    #[test]
    fn co2_formation_preserves_square_phase_of_o_site() {
        let m = kuzovkov_model(KuzovkovParams::default());
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, 0);
        let s = d.site_at(0, 0);
        l.set(s, KUZOVKOV_SPECIES.sq_co.id());
        l.set(d.site_at(1, 0), KUZOVKOV_SPECIES.sq_o.id());
        let rt = m.reaction(m.reaction_index("CO2 sq[0]").expect("exists"));
        assert!(rt.is_enabled(&l, s));
        rt.execute_collect(&mut l, s);
        assert_eq!(l.get(s), KUZOVKOV_SPECIES.sq_vacant.id());
        assert_eq!(l.get(d.site_at(1, 0)), KUZOVKOV_SPECIES.sq_vacant.id());
    }

    #[test]
    fn phase_lift_and_relax() {
        let m = kuzovkov_model(KuzovkovParams::default());
        let d = Dims::new(2, 2);
        let mut l = Lattice::filled(d, KUZOVKOV_SPECIES.hex_co.id());
        let lift = m.reaction(m.reaction_index("lift hex->sq").expect("exists"));
        assert!(lift.is_enabled(&l, psr_lattice::Site(0)));
        lift.execute_collect(&mut l, psr_lattice::Site(0));
        assert_eq!(l.get(psr_lattice::Site(0)), KUZOVKOV_SPECIES.sq_co.id());

        l.set(psr_lattice::Site(0), KUZOVKOV_SPECIES.sq_vacant.id());
        let relax = m.reaction(m.reaction_index("relax sq->hex").expect("exists"));
        assert!(relax.is_enabled(&l, psr_lattice::Site(0)));
        relax.execute_collect(&mut l, psr_lattice::Site(0));
        assert_eq!(
            l.get(psr_lattice::Site(0)),
            KUZOVKOV_SPECIES.hex_vacant.id()
        );
    }

    #[test]
    fn coverage_helpers() {
        let fractions = vec![0.2, 0.1, 0.3, 0.25, 0.15];
        assert!((co_coverage(&fractions) - 0.35).abs() < 1e-12);
        assert!((o_coverage(&fractions) - 0.15).abs() < 1e-12);
        assert!((square_phase_fraction(&fractions) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn diffusion_hops_preserve_particle_count() {
        let m = kuzovkov_model(KuzovkovParams::default());
        let d = Dims::new(3, 1);
        let mut l = Lattice::filled(d, 0);
        l.set(d.site_at(0, 0), KUZOVKOV_SPECIES.hex_co.id());
        let rt = m.reaction(m.reaction_index("CO hop h->h[0]").expect("exists"));
        assert!(rt.is_enabled(&l, d.site_at(0, 0)));
        rt.execute_collect(&mut l, d.site_at(0, 0));
        assert_eq!(l.get(d.site_at(0, 0)), 0);
        assert_eq!(l.get(d.site_at(1, 0)), KUZOVKOV_SPECIES.hex_co.id());
    }
}
