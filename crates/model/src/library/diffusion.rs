//! Diffusion models.
//!
//! The paper's Fig 2 illustrates the fundamental CA conflict with a
//! diffusion model: two particles adjacent to the same vacancy may both try
//! to jump into it during one synchronous step. [`diffusion_model`] is that
//! model on the 2-D lattice; [`single_file_model`] is the 1-D variant
//! (particles cannot pass each other) that the paper cites as a system where
//! the plain NDCA gives degenerate results.

use crate::builder::ModelBuilder;
use crate::model::Model;

/// 2-D hop diffusion: a particle `A` jumps to an adjacent vacant site with
/// rate `k_hop` per orientation (4 orientations).
pub fn diffusion_model(k_hop: f64) -> Model {
    ModelBuilder::new(&["*", "A"])
        .reaction_rotations("hop", k_hop, 4, |r| {
            r.site((0, 0), "A", "*").site((1, 0), "*", "A");
        })
        .build()
}

/// Triangular-lattice hop diffusion: a particle `A` jumps to any of its 6
/// neighbors (skewed square-grid representation; see
/// `Neighborhood::triangular`) with rate `k_hop` per direction.
pub fn triangular_diffusion_model(k_hop: f64) -> Model {
    let mut b = ModelBuilder::new(&["*", "A"]).reaction_rotations("hop", k_hop, 4, |r| {
        r.site((0, 0), "A", "*").site((1, 0), "*", "A");
    });
    for (name, off) in [("hop ne", (1, 1)), ("hop sw", (-1, -1))] {
        b = b.reaction(name, k_hop, |r| {
            r.site((0, 0), "A", "*").site(off, "*", "A");
        });
    }
    b.build()
}

/// 1-D single-file diffusion on a `L × 1` lattice: hops left and right only.
///
/// Build the lattice with `Dims::new(L, 1)`; the vertical rotations are
/// omitted so patterns never wrap the 1-site-high torus onto themselves.
pub fn single_file_model(k_hop: f64) -> Model {
    ModelBuilder::new(&["*", "A"])
        .reaction("hop right", k_hop, |r| {
            r.site((0, 0), "A", "*").site((1, 0), "*", "A");
        })
        .reaction("hop left", k_hop, |r| {
            r.site((0, 0), "A", "*").site((-1, 0), "*", "A");
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::{Dims, Lattice};

    #[test]
    fn hop_moves_particle() {
        let m = diffusion_model(1.0);
        assert_eq!(m.num_reactions(), 4);
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, 0);
        l.set(d.site_at(1, 1), 1);
        let rt = m.reaction(0); // hop[0]: +x
        assert!(rt.is_enabled(&l, d.site_at(1, 1)));
        rt.execute_collect(&mut l, d.site_at(1, 1));
        assert_eq!(l.get(d.site_at(1, 1)), 0);
        assert_eq!(l.get(d.site_at(2, 1)), 1);
        assert_eq!(l.count(1), 1, "particle count conserved");
    }

    #[test]
    fn hop_blocked_by_occupied_target() {
        let m = diffusion_model(1.0);
        let d = Dims::new(3, 1);
        let mut l = Lattice::filled(d, 1); // all occupied
        for s in d.iter_sites() {
            assert!(m.enabled_at(&l, s).is_empty());
        }
        l.set(d.site_at(1, 0), 0);
        // Now both neighbors of the vacancy can hop into it — the Fig 2
        // conflict situation.
        let enabled_left = m.enabled_at(&l, d.site_at(0, 0));
        let enabled_right = m.enabled_at(&l, d.site_at(2, 0));
        assert!(!enabled_left.is_empty());
        assert!(!enabled_right.is_empty());
    }

    #[test]
    fn triangular_model_has_six_hops() {
        let m = triangular_diffusion_model(0.5);
        assert_eq!(m.num_reactions(), 6);
        assert_eq!(m.combined_neighborhood().len(), 7);
        // Particle count conserved by a diagonal hop.
        let d = Dims::new(4, 4);
        let mut l = Lattice::filled(d, 0);
        l.set(d.site_at(1, 1), 1);
        let ne = m.reaction(m.reaction_index("hop ne").expect("exists"));
        assert!(ne.is_enabled(&l, d.site_at(1, 1)));
        ne.execute_collect(&mut l, d.site_at(1, 1));
        assert_eq!(l.get(d.site_at(2, 2)), 1);
        assert_eq!(l.count(1), 1);
    }

    #[test]
    fn single_file_has_two_reactions() {
        let m = single_file_model(0.5);
        assert_eq!(m.num_reactions(), 2);
        assert_eq!(m.total_rate(), 1.0);
    }

    #[test]
    fn single_file_conserves_order() {
        // In single-file diffusion particles cannot pass: executing any
        // enabled hop never swaps two particles.
        let m = single_file_model(1.0);
        let d = Dims::new(5, 1);
        let mut l = Lattice::from_cells(d, vec![1, 1, 0, 1, 0]);
        let rt = m.reaction(0); // hop right
        assert!(rt.is_enabled(&l, d.site_at(1, 0)));
        rt.execute_collect(&mut l, d.site_at(1, 0));
        assert_eq!(l.cells(), &[1, 0, 1, 1, 0]);
    }
}
