//! The A + B → 0 annihilation–diffusion model (Chopard & Droz, cited by
//! the paper as refs [25–27]).
//!
//! Two particle species hop on the lattice and annihilate when adjacent.
//! Starting from a random mixture the densities decay and the species
//! *segregate* into growing single-species domains, which slows the decay
//! below the mean-field `1/t` law — a classic benchmark for whether a
//! simulation algorithm preserves spatial fluctuations. Used by the
//! `segregation` example and the CA-accuracy tests.

use crate::builder::ModelBuilder;
use crate::model::Model;
use psr_lattice::{Lattice, State};
use psr_rng::SimRng;

/// Species ids: vacant 0, A 1, B 2.
pub const A: State = 1;
/// Species id of B.
pub const B: State = 2;

/// Build the annihilation model: A and B hop with rate `k_hop` per
/// orientation and annihilate with rate `k_react` per orientation when
/// adjacent.
pub fn ab_annihilation(k_hop: f64, k_react: f64) -> Model {
    ModelBuilder::new(&["*", "A", "B"])
        .reaction_rotations("A hop", k_hop, 4, |r| {
            r.site((0, 0), "A", "*").site((1, 0), "*", "A");
        })
        .reaction_rotations("B hop", k_hop, 4, |r| {
            r.site((0, 0), "B", "*").site((1, 0), "*", "B");
        })
        .reaction_rotations("A+B annihilate", k_react, 4, |r| {
            r.site((0, 0), "A", "*").site((1, 0), "B", "*");
        })
        .build()
}

/// Fill `lattice` with an uncorrelated random mixture: each site becomes A
/// or B with probability `density/2` each.
///
/// # Panics
///
/// Panics unless `0 <= density <= 1`.
pub fn random_mixture(lattice: &mut Lattice, density: f64, rng: &mut SimRng) {
    assert!(
        (0.0..=1.0).contains(&density),
        "density must be in [0, 1], got {density}"
    );
    for i in 0..lattice.len() {
        let x = rng.f64();
        let state = if x < density / 2.0 {
            A
        } else if x < density {
            B
        } else {
            0
        };
        lattice.set(psr_lattice::Site(i as u32), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::Dims;
    use psr_rng::rng_from_seed;

    #[test]
    fn model_has_twelve_reactions() {
        let m = ab_annihilation(1.0, 5.0);
        assert_eq!(m.num_reactions(), 12);
        assert_eq!(m.total_rate(), 4.0 + 4.0 + 20.0);
    }

    #[test]
    fn annihilation_requires_opposite_species() {
        let m = ab_annihilation(1.0, 1.0);
        let d = Dims::new(3, 1);
        let mut l = Lattice::filled(d, 0);
        l.set(d.site_at(0, 0), A);
        l.set(d.site_at(1, 0), A);
        let rt = m.reaction(m.reaction_index("A+B annihilate[0]").expect("exists"));
        assert!(
            !rt.is_enabled(&l, d.site_at(0, 0)),
            "A next to A must not react"
        );
        l.set(d.site_at(1, 0), B);
        assert!(rt.is_enabled(&l, d.site_at(0, 0)));
        rt.execute_collect(&mut l, d.site_at(0, 0));
        assert_eq!(l.count(A) + l.count(B), 0);
    }

    #[test]
    fn random_mixture_densities() {
        let mut l = Lattice::filled(Dims::square(60), 0);
        let mut rng = rng_from_seed(3);
        random_mixture(&mut l, 0.5, &mut rng);
        let a = l.fraction(A);
        let b = l.fraction(B);
        assert!((a - 0.25).abs() < 0.03, "A density {a}");
        assert!((b - 0.25).abs() < 0.03, "B density {b}");
    }

    #[test]
    fn annihilation_conserves_particle_difference() {
        // Every reaction changes (N_A − N_B) by 0 (hops) or 0 (pairwise
        // annihilation removes one of each): the difference is invariant.
        use psr_dmc_shim::run_short;
        let m = ab_annihilation(1.0, 10.0);
        let d = Dims::square(20);
        let mut l = Lattice::filled(d, 0);
        let mut rng = rng_from_seed(9);
        random_mixture(&mut l, 0.6, &mut rng);
        let diff_before = l.count(A) as i64 - l.count(B) as i64;
        run_short(&m, &mut l, &mut rng);
        let diff_after = l.count(A) as i64 - l.count(B) as i64;
        assert_eq!(diff_before, diff_after);
    }

    /// Minimal internal RSM loop: psr-model cannot depend on psr-dmc
    /// (layering), so tests drive reactions directly.
    mod psr_dmc_shim {
        use super::*;

        pub fn run_short(model: &Model, lattice: &mut Lattice, rng: &mut SimRng) {
            let n = lattice.len();
            let weights = model.rate_weights();
            let total: f64 = weights.iter().sum();
            let mut changes = Vec::new();
            for _ in 0..20_000 {
                let site = psr_lattice::Site(rng.index(n) as u32);
                // Linear-scan type selection (tiny model, test only).
                let mut x = rng.f64() * total;
                let mut ri = weights.len() - 1;
                for (i, &w) in weights.iter().enumerate() {
                    if x < w {
                        ri = i;
                        break;
                    }
                    x -= w;
                }
                changes.clear();
                model.reaction(ri).try_execute(lattice, site, &mut changes);
            }
        }
    }
}
