//! Concrete surface-reaction models from the paper and its references.
//!
//! - [`zgb`] — the Ziff–Gulari–Barshad CO-oxidation model of §2 / Table I;
//! - [`kuzovkov`] — the Pt(100) surface-reconstruction model with coverage
//!   oscillations used by the §6 experiments (Figs 8–10);
//! - [`diffusion`] — particle-hop models, including the two-site conflict of
//!   Fig 2 and the 1-D single-file model;
//! - [`ising`] — Glauber-dynamics Ising model, the classic example where a
//!   plain NDCA gives degenerate results (§4, Vichniac).

pub mod annihilation;
pub mod diffusion;
pub mod ising;
pub mod kuzovkov;
pub mod zgb;

pub use annihilation::ab_annihilation;
pub use diffusion::{diffusion_model, single_file_model, triangular_diffusion_model};
pub use ising::ising_glauber;
pub use kuzovkov::{kuzovkov_model, KuzovkovParams, KuzovkovSpecies};
pub use zgb::{zgb_model, zgb_ziff, ZgbRates, ZgbSpecies};
