//! The Ziff–Gulari–Barshad CO-oxidation model (paper §2, Table I).
//!
//! Three species `D = {*, CO, O}` and seven reaction types:
//!
//! | type       | versions | pattern |
//! |------------|----------|---------|
//! | `RtCO`     | 1        | `{(s, *, CO)}` |
//! | `RtO2`     | 2        | `{(s, *, O), (s+e, *, O)}` for `e ∈ {(1,0), (0,1)}` |
//! | `RtCO+O`   | 4        | `{(s, CO, *), (s+e, O, *)}` for the 4 axis offsets |
//!
//! Note: Table I in the paper prints the fourth `RtCO+O` version as
//! `(s+(0,-1), CO, *)`; that is a typographical error (the partner of an
//! adsorbed CO in the CO₂ formation is an O), and we implement the
//! physically intended `(s+(0,-1), O, *)`.

use crate::builder::ModelBuilder;
use crate::model::Model;
use crate::species::Species;

/// Species ids of the ZGB model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZgbSpecies {
    /// Vacant site `*` (id 0).
    pub vacant: Species,
    /// Adsorbed CO (id 1).
    pub co: Species,
    /// Adsorbed O (id 2).
    pub o: Species,
}

/// The canonical ZGB species layout.
pub const ZGB_SPECIES: ZgbSpecies = ZgbSpecies {
    vacant: Species(0),
    co: Species(1),
    o: Species(2),
};

/// Rate constants of the three reaction groups.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZgbRates {
    /// CO adsorption rate `k_CO` (the single `RtCO` type).
    pub k_co: f64,
    /// O₂ dissociative adsorption rate `k_O2` (each of the 2 orientations).
    pub k_o2: f64,
    /// CO₂ formation+desorption rate `k_CO2` (each of the 4 orientations).
    pub k_co2: f64,
}

/// Build the ZGB model with explicit rate constants per reaction version.
pub fn zgb_model(rates: ZgbRates) -> Model {
    ModelBuilder::new(&["*", "CO", "O"])
        .reaction("RtCO", rates.k_co, |r| {
            r.site((0, 0), "*", "CO");
        })
        .reaction_rotations("RtO2", rates.k_o2, 2, |r| {
            r.site((0, 0), "*", "O").site((1, 0), "*", "O");
        })
        .reaction_rotations("RtCO+O", rates.k_co2, 4, |r| {
            r.site((0, 0), "CO", "*").site((1, 0), "O", "*");
        })
        .build()
}

/// Indices of the four `RtCO+O` reaction versions — the CO₂-producing
/// group. Firing counts over this group give the CO₂ turnover rate, the
/// activity observable of the paper's Fig 2/3 phase diagram.
///
/// # Panics
///
/// Panics if `model` is not a ZGB model (no `RtCO+O` reactions).
pub fn co2_reaction_indices(model: &Model) -> Vec<usize> {
    let indices: Vec<usize> = (0..model.num_reactions())
        .filter(|&i| model.reaction(i).name().starts_with("RtCO+O"))
        .collect();
    assert!(!indices.is_empty(), "model has no RtCO+O reactions");
    indices
}

/// The classic single-parameter ZGB parameterization.
///
/// `y` is the CO fraction in the gas phase: CO impinges with rate `y`, O₂
/// with total rate `1 − y` split over the two orientations. `k_react` is the
/// CO+O surface-reaction rate per orientation; the original ZGB paper takes
/// the reaction as instantaneous, which a large `k_react` approximates.
///
/// # Panics
///
/// Panics unless `0 < y < 1`.
pub fn zgb_ziff(y: f64, k_react: f64) -> Model {
    assert!(
        y > 0.0 && y < 1.0,
        "CO fraction y must be in (0, 1), got {y}"
    );
    zgb_model(ZgbRates {
        k_co: y,
        k_o2: (1.0 - y) / 2.0,
        k_co2: k_react,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::{Dims, Lattice, Offset};

    #[test]
    fn co2_group_is_the_four_reaction_versions() {
        let m = zgb_ziff(0.4, 5.0);
        let group = co2_reaction_indices(&m);
        assert_eq!(group.len(), 4);
        for (q, &i) in group.iter().enumerate() {
            assert_eq!(m.reaction(i).name(), format!("RtCO+O[{q}]"));
        }
    }

    #[test]
    fn zgb_has_seven_reaction_types() {
        // Table I: 1 CO adsorption + 2 O2 orientations + 4 CO+O orientations.
        let m = zgb_model(ZgbRates {
            k_co: 1.0,
            k_o2: 1.0,
            k_co2: 1.0,
        });
        assert_eq!(m.num_reactions(), 7);
        assert_eq!(m.reaction_index("RtCO"), Some(0));
        assert!(m.reaction_index("RtO2[0]").is_some());
        assert!(m.reaction_index("RtO2[1]").is_some());
        for q in 0..4 {
            assert!(m.reaction_index(&format!("RtCO+O[{q}]")).is_some());
        }
    }

    #[test]
    fn combined_neighborhood_is_von_neumann() {
        let m = zgb_ziff(0.5, 1.0);
        let nb = m.combined_neighborhood();
        assert_eq!(nb.len(), 5);
        assert_eq!(nb.radius(), 1);
    }

    #[test]
    fn total_rate_matches_parameterization() {
        let m = zgb_ziff(0.4, 2.0);
        // K = y + 2*(1-y)/2 + 4*k_react = 0.4 + 0.6 + 8.
        assert!((m.total_rate() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn o2_adsorbs_only_on_adjacent_vacancies() {
        let m = zgb_ziff(0.5, 1.0);
        let d = Dims::new(4, 4);
        let mut l = Lattice::filled(d, 0);
        let rt = m.reaction(m.reaction_index("RtO2[0]").expect("exists"));
        let s = d.site_at(1, 1);
        assert!(rt.is_enabled(&l, s));
        l.set(d.site_at(2, 1), ZGB_SPECIES.co.id());
        assert!(!rt.is_enabled(&l, s));
    }

    #[test]
    fn co_o_pattern_orientations_point_in_all_axes() {
        let m = zgb_ziff(0.5, 1.0);
        let mut partner_offsets = Vec::new();
        for q in 0..4 {
            let rt = m.reaction(m.reaction_index(&format!("RtCO+O[{q}]")).expect("exists"));
            // The non-origin transform is the O partner; it must require O
            // (Table I's fourth row has a typo we correct).
            let partner = rt
                .transforms()
                .iter()
                .find(|t| t.offset != Offset::ZERO)
                .expect("pair pattern");
            assert_eq!(partner.src, ZGB_SPECIES.o);
            assert_eq!(partner.tgt, ZGB_SPECIES.vacant);
            partner_offsets.push(partner.offset);
        }
        for e in [
            Offset::new(1, 0),
            Offset::new(0, 1),
            Offset::new(-1, 0),
            Offset::new(0, -1),
        ] {
            assert!(partner_offsets.contains(&e), "missing orientation {e:?}");
        }
    }

    #[test]
    fn co_o_reaction_clears_both_sites() {
        let m = zgb_ziff(0.5, 1.0);
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, 0);
        let s = d.site_at(0, 0);
        l.set(s, ZGB_SPECIES.co.id());
        l.set(d.site_at(1, 0), ZGB_SPECIES.o.id());
        let rt = m.reaction(m.reaction_index("RtCO+O[0]").expect("exists"));
        assert!(rt.is_enabled(&l, s));
        rt.execute_collect(&mut l, s);
        assert_eq!(l.count(0), 9);
    }

    #[test]
    #[should_panic(expected = "CO fraction")]
    fn invalid_y_panics() {
        zgb_ziff(1.5, 1.0);
    }
}
