#!/usr/bin/env bash
# Load-test the serving layer and write the benchmark record the bench
# gate consumes.
#
#   scripts/loadtest.sh            # full run -> BENCH_serve.json (committed)
#   scripts/loadtest.sh --smoke    # small run -> BENCH_serve_smoke.json (CI)
#
# The driver (`loadtest_serve`) starts an in-process server, warms a hot
# set of specs, then hammers it with a hot/cold submission mix from
# concurrent clients. It reports throughput, cache hit rate, and exact
# hit/cold p50/p99 latencies; `check_bench.sh` gates on hit_speedup_p99
# (cached p99 must be >= 10x faster than cold p99 at full size).
set -euo pipefail
cd "$(dirname "$0")/.."

DRIVER=target/release/loadtest_serve
if [ ! -x "$DRIVER" ]; then
    echo "loadtest: building release driver"
    cargo build --release -p psr-serve --bin loadtest_serve
fi

if [ "${1:-}" = "--smoke" ]; then
    # Few clients, cold jobs of a few hundred ms: big enough that the
    # cache's win is unambiguous over the ~ms connection floor, small
    # enough not to monopolise the shared CI host. The threshold is
    # still relaxed by the caller (ci.sh) for wall-clock noise.
    exec "$DRIVER" --clients 4 --requests 10 --hot-frac 0.5 \
        --side 32 --steps 2000 --out BENCH_serve_smoke.json
fi

# Full size: cold jobs are real simulations (~hundreds of ms), so a
# cache hit that short-circuits the compute shows its true advantage.
exec "$DRIVER" --clients 8 --requests 30 --hot-frac 0.5 \
    --side 48 --steps 6000 --out BENCH_serve.json
