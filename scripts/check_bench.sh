#!/usr/bin/env bash
# Gate on the committed benchmark records:
#
#   1. Kernel bench (BENCH_kernel.json): the compiled matcher must hold
#      >= MIN_SPEEDUP over the pre-change NDCA hot loop for ZGB (the
#      acceptance bar for the compiled-kernel work).
#   2. Replica bench (BENCH_replica.json): the batched lockstep engine
#      must hold >= MIN_REPLICA_SPEEDUP replica throughput over looping
#      the single-replica kernel at some width in 32-64, with
#      bit-identical trajectories on every gated entry.
#   3. Shard bench (BENCH_shard.json): the domain-decomposed executor
#      must hold >= MIN_SHARD_SPEEDUP critical-path sweep throughput at
#      4 workers over the 1-worker sharded baseline on every lattice
#      size, with the 4-worker trajectory bit-identical to 1-worker.
#      Socket-transport entries (unix/tcp, one OS process per worker)
#      are gated separately at >= MIN_SHARD_SOCKET_SPEEDUP, since they
#      pay real wire latency the in-process arm does not.
#   4. Serve bench (BENCH_serve.json): the serving layer's
#      content-addressed cache must make hot (cached) requests >=
#      MIN_SERVE_SPEEDUP faster at p99 than cold (computed) requests,
#      with a non-trivial number of hits actually observed.
#   5. Splitting bench (BENCH_splitting.json): the fractional-step
#      Strang arm must sit within SPLITTING_EPS of the DMC coverage at
#      the finest documented window AND hold >= MIN_SPLITTING_SPEEDUP
#      simulated-time throughput over PNDCA at the loosest window — the
#      two ends of the accuracy-for-throughput trade the executor sells.
#
# Regenerate with `target/release/bench_kernel` / `bench_replica` /
# `bench_shard` / `bench_splitting` / `scripts/loadtest.sh` first. Smoke
# callers pass the *_smoke.json files and looser thresholds.
#
# The replica default is 3.5x, not the 8x the batch work originally
# aimed for: on this single-core host the AVX-512 sweep is port-bound at
# ~3.5 cycles/trial against a ~20 cycles/trial serial baseline, which
# caps the honest ratio near 4.5x (measured 4.0-4.4x; see
# EXPERIMENTS.md "Batched replicas"). The gate protects the achieved
# level rather than gating on unreachable hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_FILE=${1:-BENCH_kernel.json}
REPLICA_FILE=${2:-BENCH_replica.json}
SHARD_FILE=${3:-BENCH_shard.json}
SERVE_FILE=${4:-BENCH_serve.json}
SPLITTING_FILE=${5:-BENCH_splitting.json}
MIN_SPEEDUP=${MIN_SPEEDUP:-3.0}
MIN_REPLICA_SPEEDUP=${MIN_REPLICA_SPEEDUP:-3.5}
MIN_SHARD_SPEEDUP=${MIN_SHARD_SPEEDUP:-2.5}
MIN_SHARD_SOCKET_SPEEDUP=${MIN_SHARD_SOCKET_SPEEDUP:-2.0}
MIN_SERVE_SPEEDUP=${MIN_SERVE_SPEEDUP:-10.0}
MIN_KEEPALIVE_SPEEDUP=${MIN_KEEPALIVE_SPEEDUP:-2.0}
MIN_SPLITTING_SPEEDUP=${MIN_SPLITTING_SPEEDUP:-2.0}
SPLITTING_EPS=${SPLITTING_EPS:-0.02}

if [ ! -f "$BENCH_FILE" ]; then
    echo "check_bench: $BENCH_FILE not found (run bench_kernel first)" >&2
    exit 1
fi

# Each result is a single JSON line; pull the headline speedup off the ZGB
# entry (the key "speedup", not "speedup_vs_hatch").
speedup=$(grep '"model": "ZGB"' "$BENCH_FILE" \
    | sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p')
if [ -z "$speedup" ]; then
    echo "check_bench: no ZGB speedup entry in $BENCH_FILE" >&2
    exit 1
fi

identical=$(grep '"model": "ZGB"' "$BENCH_FILE" \
    | sed -n 's/.*"trajectories_identical": \(true\|false\).*/\1/p')
if [ "$identical" != "true" ]; then
    echo "check_bench: ZGB naive/compiled trajectories not identical" >&2
    exit 1
fi

ok=$(awk -v s="$speedup" -v m="$MIN_SPEEDUP" 'BEGIN { print (s >= m) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
    echo "check_bench: ZGB compiled-kernel speedup ${speedup}x < ${MIN_SPEEDUP}x" >&2
    exit 1
fi
echo "check_bench: ZGB compiled-kernel speedup ${speedup}x >= ${MIN_SPEEDUP}x"

if [ ! -f "$REPLICA_FILE" ]; then
    echo "check_bench: $REPLICA_FILE not found (run bench_replica first)" >&2
    exit 1
fi

# One `"replicas": <width>` result line per batch width; every entry must
# be bit-identical, and the best width must clear the throughput bar.
best=0
widths=0
while IFS= read -r line; do
    widths=$((widths + 1))
    r_speedup=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' <<<"$line")
    r_identical=$(sed -n 's/.*"trajectories_identical": \(true\|false\).*/\1/p' <<<"$line")
    width=$(sed -n 's/.*"replicas": \([0-9]*\).*/\1/p' <<<"$line")
    if [ "$r_identical" != "true" ]; then
        echo "check_bench: batch x$width trajectories not identical to single-replica runs" >&2
        exit 1
    fi
    best=$(awk -v a="$best" -v b="$r_speedup" 'BEGIN { print (b > a) ? b : a }')
done < <(grep '"replicas": ' "$REPLICA_FILE")
if [ "$widths" -eq 0 ]; then
    echo "check_bench: no replica entries in $REPLICA_FILE" >&2
    exit 1
fi

ok=$(awk -v s="$best" -v m="$MIN_REPLICA_SPEEDUP" 'BEGIN { print (s >= m) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
    echo "check_bench: batched replica speedup ${best}x < ${MIN_REPLICA_SPEEDUP}x" >&2
    exit 1
fi
echo "check_bench: batched replica speedup ${best}x >= ${MIN_REPLICA_SPEEDUP}x"

if [ ! -f "$SHARD_FILE" ]; then
    echo "check_bench: $SHARD_FILE not found (run bench_shard first)" >&2
    exit 1
fi

# One `"side": <L>` result line per (lattice size, transport); every
# entry must be grid-invariant and clear its transport's strong-scaling
# bar on its own. Socket transports (unix/tcp) carry real wire latency
# and get the looser MIN_SHARD_SOCKET_SPEEDUP bar; the in-process
# entries keep MIN_SHARD_SPEEDUP.
sizes=0
sockets=0
while IFS= read -r line; do
    sizes=$((sizes + 1))
    side=$(sed -n 's/.*"side": \([0-9]*\).*/\1/p' <<<"$line")
    transport=$(sed -n 's/.*"transport": "\([a-z]*\)".*/\1/p' <<<"$line")
    transport=${transport:-inline}
    s_speedup=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' <<<"$line")
    s_identical=$(sed -n 's/.*"trajectories_identical": \(true\|false\).*/\1/p' <<<"$line")
    if [ "$s_identical" != "true" ]; then
        echo "check_bench: L=$side $transport 4-worker trajectory not identical to 1-worker" >&2
        exit 1
    fi
    if [ "$transport" = "inline" ]; then
        min=$MIN_SHARD_SPEEDUP
    else
        min=$MIN_SHARD_SOCKET_SPEEDUP
        sockets=$((sockets + 1))
    fi
    ok=$(awk -v s="$s_speedup" -v m="$min" 'BEGIN { print (s >= m) ? 1 : 0 }')
    if [ "$ok" -ne 1 ]; then
        echo "check_bench: L=$side $transport sharded speedup ${s_speedup}x < ${min}x" >&2
        exit 1
    fi
    echo "check_bench: L=$side $transport sharded 4-worker speedup ${s_speedup}x >= ${min}x"
done < <(grep '"side": ' "$SHARD_FILE")
if [ "$sizes" -eq 0 ]; then
    echo "check_bench: no shard entries in $SHARD_FILE" >&2
    exit 1
fi
if [ "$sockets" -eq 0 ]; then
    echo "check_bench: no socket-transport entries in $SHARD_FILE (run bench_shard after the socket arm landed)" >&2
    exit 1
fi

if [ ! -f "$SERVE_FILE" ]; then
    echo "check_bench: $SERVE_FILE not found (run scripts/loadtest.sh first)" >&2
    exit 1
fi

# Single JSON line from loadtest_serve; gate on the hit-vs-cold p99 ratio
# and require that the hot set actually produced cache hits.
serve_speedup=$(sed -n 's/.*"hit_speedup_p99":\([0-9.]*\).*/\1/p' "$SERVE_FILE")
serve_hits=$(sed -n 's/.*"hits":\([0-9]*\).*/\1/p' "$SERVE_FILE")
if [ -z "$serve_speedup" ] || [ -z "$serve_hits" ]; then
    echo "check_bench: malformed serve record in $SERVE_FILE" >&2
    exit 1
fi
if [ "$serve_hits" -lt 1 ]; then
    echo "check_bench: serve load test recorded no cache hits" >&2
    exit 1
fi
ok=$(awk -v s="$serve_speedup" -v m="$MIN_SERVE_SPEEDUP" 'BEGIN { print (s >= m) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
    echo "check_bench: serve cache-hit p99 speedup ${serve_speedup}x < ${MIN_SERVE_SPEEDUP}x" >&2
    exit 1
fi
echo "check_bench: serve cache-hit p99 speedup ${serve_speedup}x >= ${MIN_SERVE_SPEEDUP}x (${serve_hits} hits)"

# Keep-alive: p50 of a /healthz round trip through a pooled connection
# must beat a fresh-connection-per-request client by the configured
# factor (the pooled path skips the TCP handshake and accept path).
ka_speedup=$(sed -n 's/.*"keepalive_speedup_p50":\([0-9.]*\).*/\1/p' "$SERVE_FILE")
if [ -z "$ka_speedup" ]; then
    echo "check_bench: no keepalive_speedup_p50 in $SERVE_FILE (regenerate with scripts/loadtest.sh)" >&2
    exit 1
fi
ok=$(awk -v s="$ka_speedup" -v m="$MIN_KEEPALIVE_SPEEDUP" 'BEGIN { print (s >= m) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
    echo "check_bench: keep-alive p50 speedup ${ka_speedup}x < ${MIN_KEEPALIVE_SPEEDUP}x" >&2
    exit 1
fi
echo "check_bench: keep-alive p50 speedup ${ka_speedup}x >= ${MIN_KEEPALIVE_SPEEDUP}x"

if [ ! -f "$SPLITTING_FILE" ]; then
    echo "check_bench: $SPLITTING_FILE not found (run bench_splitting first)" >&2
    exit 1
fi

# One summary line carries the gated endpoints of the splitting trade-off:
# Strang accuracy at the finest window, Strang-vs-PNDCA throughput at the
# loosest one.
summary=$(grep '"summary": "splitting"' "$SPLITTING_FILE")
if [ -z "$summary" ]; then
    echo "check_bench: no splitting summary line in $SPLITTING_FILE" >&2
    exit 1
fi
sp_err=$(sed -n 's/.*"strang_abs_error": \([0-9.]*\).*/\1/p' <<<"$summary")
sp_speedup=$(sed -n 's/.*"strang_speedup_vs_pndca": \([0-9.]*\).*/\1/p' <<<"$summary")
sp_fine=$(sed -n 's/.*"accuracy_window": \([0-9.]*\).*/\1/p' <<<"$summary")
sp_loose=$(sed -n 's/.*"loose_window": \([0-9.]*\).*/\1/p' <<<"$summary")
if [ -z "$sp_err" ] || [ -z "$sp_speedup" ]; then
    echo "check_bench: malformed splitting summary in $SPLITTING_FILE" >&2
    exit 1
fi
ok=$(awk -v e="$sp_err" -v m="$SPLITTING_EPS" 'BEGIN { print (e <= m) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
    echo "check_bench: Strang splitting error $sp_err at dt=$sp_fine > eps $SPLITTING_EPS" >&2
    exit 1
fi
ok=$(awk -v s="$sp_speedup" -v m="$MIN_SPLITTING_SPEEDUP" 'BEGIN { print (s >= m) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
    echo "check_bench: Strang throughput ${sp_speedup}x PNDCA at dt=$sp_loose < ${MIN_SPLITTING_SPEEDUP}x" >&2
    exit 1
fi
echo "check_bench: Strang within $SPLITTING_EPS of DMC at dt=$sp_fine and ${sp_speedup}x PNDCA at dt=$sp_loose"
