#!/usr/bin/env bash
# Gate on the kernel benchmark: the compiled matcher must hold >= MIN_SPEEDUP
# over the pre-change NDCA hot loop for ZGB (the acceptance bar for the
# compiled-kernel work). Reads BENCH_kernel.json at the repo root; run
# `target/release/bench_kernel` first to regenerate it.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_FILE=${1:-BENCH_kernel.json}
MIN_SPEEDUP=${MIN_SPEEDUP:-3.0}

if [ ! -f "$BENCH_FILE" ]; then
    echo "check_bench: $BENCH_FILE not found (run bench_kernel first)" >&2
    exit 1
fi

# Each result is a single JSON line; pull the headline speedup off the ZGB
# entry (the key "speedup", not "speedup_vs_hatch").
speedup=$(grep '"model": "ZGB"' "$BENCH_FILE" \
    | sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p')
if [ -z "$speedup" ]; then
    echo "check_bench: no ZGB speedup entry in $BENCH_FILE" >&2
    exit 1
fi

identical=$(grep '"model": "ZGB"' "$BENCH_FILE" \
    | sed -n 's/.*"trajectories_identical": \(true\|false\).*/\1/p')
if [ "$identical" != "true" ]; then
    echo "check_bench: ZGB naive/compiled trajectories not identical" >&2
    exit 1
fi

ok=$(awk -v s="$speedup" -v m="$MIN_SPEEDUP" 'BEGIN { print (s >= m) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
    echo "check_bench: ZGB compiled-kernel speedup ${speedup}x < ${MIN_SPEEDUP}x" >&2
    exit 1
fi
echo "check_bench: ZGB compiled-kernel speedup ${speedup}x >= ${MIN_SPEEDUP}x"
