#!/usr/bin/env bash
# Repo CI: format, lint, build, test. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> engine smoke: kill, resume, compare against clean run"
ENGINE=target/release/psr-engine
SMOKE_DIR=$(mktemp -d)
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null; rm -rf "$SMOKE_DIR"' EXIT
set +e
"$ENGINE" run scripts/engine_smoke.spec --ckpt-dir "$SMOKE_DIR/faulty" --quiet
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "expected interrupted exit code 3 from the faulty run, got $rc"
    exit 1
fi
"$ENGINE" run scripts/engine_smoke.spec --ckpt-dir "$SMOKE_DIR/faulty" --resume --quiet
"$ENGINE" run scripts/engine_smoke.spec --ckpt-dir "$SMOKE_DIR/clean" --ignore-faults --quiet
for job in zgb rsm_ref fskmc; do
    cmp "$SMOKE_DIR/faulty/$job.done" "$SMOKE_DIR/clean/$job.done"
done
echo "engine smoke: resumed run is bit-identical to the clean run"

echo "==> engine socket smoke: shards=4 over unix sockets, kill, resume, compare vs inline"
set +e
"$ENGINE" run scripts/engine_socket_smoke.spec --ckpt-dir "$SMOKE_DIR/sock-faulty" --quiet
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "expected interrupted exit code 3 from the faulty socket run, got $rc"
    exit 1
fi
"$ENGINE" run scripts/engine_socket_smoke.spec --ckpt-dir "$SMOKE_DIR/sock-faulty" --resume --quiet
# The clean reference runs the identical job on the inline scheduler: the
# comparison below is a cross-transport bit-identity check.
sed 's/^transport = unix/transport = inline/' scripts/engine_socket_smoke.spec \
    > "$SMOKE_DIR/sock_inline.spec"
"$ENGINE" run "$SMOKE_DIR/sock_inline.spec" --ckpt-dir "$SMOKE_DIR/sock-clean" --ignore-faults --quiet
cmp "$SMOKE_DIR/sock-faulty/sock.done" "$SMOKE_DIR/sock-clean/sock.done"
echo "engine socket smoke: socket resume is bit-identical to the inline run"

echo "==> socket transport suite (bit-identity over 1000 steps + worker-kill fault)"
cargo test -q --release -p psr-shard --test socket

echo "==> kernel differential suite (proptest + trajectory identity)"
cargo test -q --release -p psr-kernel --test differential
cargo test -q --release -p psr-ca --test kernel_identity
cargo test -q --release -p psr-dmc --test kernel_identity

echo "==> bench_kernel --smoke (compiled vs naive, small lattice)"
target/release/bench_kernel --smoke

echo "==> bench_replica --smoke (batched lockstep vs serial replica loop)"
target/release/bench_replica --smoke

echo "==> bench_shard --smoke (sharded strong scaling, small lattice)"
target/release/bench_shard --smoke

echo "==> bench_splitting --smoke (fractional-step error vs window vs throughput)"
target/release/bench_splitting --smoke

# Smoke thresholds sit below the committed full-size numbers: the small
# jobs are noisier and this host's wall clock is shared (the shard smoke
# lattice is 64x64, where the halo is a much larger fraction of the
# sweep than at the gated 1024/2048 sizes).
echo "==> loadtest --smoke (serving layer cache-hit speedup)"
scripts/loadtest.sh --smoke

MIN_SPEEDUP=3.0 MIN_REPLICA_SPEEDUP=3.0 MIN_SHARD_SPEEDUP=2.0 \
    MIN_SHARD_SOCKET_SPEEDUP=1.7 MIN_SERVE_SPEEDUP=3.0 MIN_KEEPALIVE_SPEEDUP=1.5 \
    MIN_SPLITTING_SPEEDUP=2.0 SPLITTING_EPS=0.04 \
    scripts/check_bench.sh BENCH_kernel_smoke.json BENCH_replica_smoke.json \
    BENCH_shard_smoke.json BENCH_serve_smoke.json BENCH_splitting_smoke.json

echo "==> serve smoke: HTTP submit, observable cross-check, 429 shed, SIGTERM drain"
SERVE=target/release/psr-serve
SERVE_DIR="$SMOKE_DIR/serve-state"
"$SERVE" serve --addr 127.0.0.1:0 --state-dir "$SERVE_DIR" --workers 1 --queue-cap 2 \
    >/dev/null &
SERVE_PID=$!
for _ in $(seq 1 200); do
    [ -s "$SERVE_DIR/addr" ] && break
    sleep 0.05
done
ADDR=$(cat "$SERVE_DIR/addr")

cat > "$SMOKE_DIR/serve.spec" <<'SPEC'
model = zgb 0.51 5
algorithm = ndca
side = 16
seed = 7
steps = 120
checkpoint_every = 40
SPEC
ID=$("$SERVE" submit --addr "$ADDR" --tenant ci "$SMOKE_DIR/serve.spec" \
    | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
"$SERVE" wait --addr "$ADDR" "$ID" >/dev/null
"$SERVE" result --addr "$ADDR" "$ID" > "$SMOKE_DIR/serve_result.jsonl"

# The same job run directly through psr-engine must land on the same final
# observable line — the serving layer adds no drift on top of the engine.
cat > "$SMOKE_DIR/serve_direct.spec" <<'SPEC'
[engine]
workers = 1

[job direct]
model = zgb 0.51 5
algorithm = ndca
side = 16
seed = 7
steps = 120
checkpoint_every = 40
SPEC
"$ENGINE" run "$SMOKE_DIR/serve_direct.spec" --ckpt-dir "$SMOKE_DIR/serve-direct" --quiet
"$SERVE" observe "$SMOKE_DIR/serve.spec" "$SMOKE_DIR/serve-direct/direct.done" \
    > "$SMOKE_DIR/serve_direct_line.json"
if ! cmp -s <(tail -n 1 "$SMOKE_DIR/serve_result.jsonl") "$SMOKE_DIR/serve_direct_line.json"; then
    echo "serve smoke: served observables diverge from the direct engine run"
    diff <(tail -n 1 "$SMOKE_DIR/serve_result.jsonl") "$SMOKE_DIR/serve_direct_line.json" || true
    exit 1
fi
echo "serve smoke: served JSONL matches the direct psr-engine run"

# Saturate the 2-deep queue with slow jobs; the next submission must be
# shed with 429 (submit exits 4 on Retry-After).
for s in 1 2 3; do
    printf 'model = zgb 0.51 5\nalgorithm = ndca\nside = 40\nseed = 9%s\nsteps = 900000\ncheckpoint_every = 1000\n' \
        "$s" > "$SMOKE_DIR/slow$s.spec"
done
"$SERVE" submit --addr "$ADDR" "$SMOKE_DIR/slow1.spec" >/dev/null
"$SERVE" submit --addr "$ADDR" "$SMOKE_DIR/slow2.spec" >/dev/null
set +e
"$SERVE" submit --addr "$ADDR" "$SMOKE_DIR/slow3.spec" >/dev/null
rc=$?
set -e
if [ "$rc" -ne 4 ]; then
    echo "serve smoke: expected 429 (exit 4) from a saturated queue, got $rc"
    exit 1
fi
echo "serve smoke: saturated queue sheds with 429 + Retry-After"

# SIGTERM must drain gracefully: checkpoint the in-flight slow job and
# exit 0 well before it could possibly finish its 900k steps.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
echo "serve smoke: SIGTERM drained and exited cleanly"

echo "==> validate --smoke (statistical accuracy gates, small budgets)"
scripts/validate.sh --smoke

echo "CI green."
