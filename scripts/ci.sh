#!/usr/bin/env bash
# Repo CI: format, lint, build, test. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> engine smoke: kill, resume, compare against clean run"
ENGINE=target/release/psr-engine
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
set +e
"$ENGINE" run scripts/engine_smoke.spec --ckpt-dir "$SMOKE_DIR/faulty" --quiet
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "expected interrupted exit code 3 from the faulty run, got $rc"
    exit 1
fi
"$ENGINE" run scripts/engine_smoke.spec --ckpt-dir "$SMOKE_DIR/faulty" --resume --quiet
"$ENGINE" run scripts/engine_smoke.spec --ckpt-dir "$SMOKE_DIR/clean" --ignore-faults --quiet
for job in zgb rsm_ref; do
    cmp "$SMOKE_DIR/faulty/$job.done" "$SMOKE_DIR/clean/$job.done"
done
echo "engine smoke: resumed run is bit-identical to the clean run"

echo "==> kernel differential suite (proptest + trajectory identity)"
cargo test -q --release -p psr-kernel --test differential
cargo test -q --release -p psr-ca --test kernel_identity
cargo test -q --release -p psr-dmc --test kernel_identity

echo "==> bench_kernel --smoke (compiled vs naive, small lattice)"
target/release/bench_kernel --smoke

echo "==> bench_replica --smoke (batched lockstep vs serial replica loop)"
target/release/bench_replica --smoke

echo "==> bench_shard --smoke (sharded strong scaling, small lattice)"
target/release/bench_shard --smoke

# Smoke thresholds sit below the committed full-size numbers: the small
# jobs are noisier and this host's wall clock is shared (the shard smoke
# lattice is 64x64, where the halo is a much larger fraction of the
# sweep than at the gated 1024/2048 sizes).
MIN_SPEEDUP=3.0 MIN_REPLICA_SPEEDUP=3.0 MIN_SHARD_SPEEDUP=2.0 \
    scripts/check_bench.sh BENCH_kernel_smoke.json BENCH_replica_smoke.json BENCH_shard_smoke.json

echo "==> validate --smoke (statistical accuracy gates, small budgets)"
scripts/validate.sh --smoke

echo "CI green."
