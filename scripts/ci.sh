#!/usr/bin/env bash
# Repo CI: format, lint, build, test. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI green."
