#!/usr/bin/env bash
# Statistical validation harness: paper-figure accuracy gates.
#
#   scripts/validate.sh            full gate, writes VALIDATE.json (~1 min)
#   scripts/validate.sh --smoke    CI tier, writes VALIDATE_smoke.json (~2 s)
#
# All arguments are forwarded to psr-validate (see `psr-validate` docs:
# --tier exact|segers|statistical|kink, --out, --seed, --workers,
# --quiet). Exit code 2 means at least one accuracy check failed.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p psr-validate
exec target/release/psr-validate "$@"
