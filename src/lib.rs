//! Umbrella crate for the PSR workspace.
//!
//! Re-exports [`psr_core`]'s public API so that examples and integration
//! tests (and downstream users who want a single dependency) can write
//! `use surface_reactions::prelude::*;`.
//!
//! See the individual crates for the layered architecture:
//! `psr-lattice` → `psr-model` → (`psr-dmc`, `psr-ca`) →
//! (`psr-parallel`, `psr-batch`) → `psr-core`.

pub use psr_core::*;

/// Direct access to the layered crates for advanced use.
pub mod crates {
    pub use psr_batch as batch;
    pub use psr_ca as ca;
    pub use psr_dmc as dmc;
    pub use psr_lattice as lattice;
    pub use psr_model as model;
    pub use psr_parallel as parallel;
    pub use psr_rng as rng;
    pub use psr_stats as stats;
}
