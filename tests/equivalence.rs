//! Cross-crate kinetic equivalence tests.
//!
//! The paper's central quantitative claims, as executable assertions:
//!
//! - RSM, VSSM and FRM all simulate the Master Equation — their kinetics
//!   agree with each other and, on tiny lattices, with the *exact* ME
//!   integration;
//! - L-PNDCA with the limit parameters (`m = 1, L = N` and `m = N, L = 1`)
//!   reproduces RSM (Fig 8);
//! - L-PNDCA with `L = 1` on the five-chunk partition stays close to RSM,
//!   while large `L` deviates more (Fig 9 a/b).

use surface_reactions::prelude::*;

fn zgb_sim(algorithm: Algorithm, seed: u64) -> SimOutput {
    Simulator::new(zgb_ziff(0.45, 5.0))
        .dims(Dims::square(40))
        .seed(seed)
        .algorithm(algorithm)
        .sample_dt(0.2)
        .run_until(6.0)
}

/// RMS deviation of CO coverage between two runs.
fn co_dev(a: &SimOutput, b: &SimOutput) -> f64 {
    rms_deviation(a.series(1), b.series(1), 60).expect("series overlap")
}

#[test]
fn dmc_algorithms_agree_pairwise() {
    let rsm = zgb_sim(Algorithm::Rsm, 1);
    let vssm = zgb_sim(Algorithm::Vssm, 2);
    let frm = zgb_sim(Algorithm::Frm, 3);
    // Independent seeds: deviation is pure stochastic noise, O(1/√N-ish).
    assert!(
        co_dev(&rsm, &vssm) < 0.06,
        "RSM vs VSSM: {}",
        co_dev(&rsm, &vssm)
    );
    assert!(
        co_dev(&rsm, &frm) < 0.06,
        "RSM vs FRM: {}",
        co_dev(&rsm, &frm)
    );
    assert!(
        co_dev(&vssm, &frm) < 0.06,
        "VSSM vs FRM: {}",
        co_dev(&vssm, &frm)
    );
}

#[test]
fn rsm_matches_exact_master_equation_on_tiny_lattice() {
    // 3x3 ZGB-like model is too big to enumerate (3^9 ≈ 20k states is fine
    // actually); use 2x2 for speed and average many RSM replicas.
    let model = zgb_ziff(0.5, 2.0);
    let dims = Dims::square(2);
    let initial = Lattice::filled(dims, 0);

    let mut me = MasterEquation::new(&model, &initial);
    let exact = me.integrate(1.0, 0.005, 0.25, ZGB_SPECIES.co.id());

    // Average 400 independent RSM runs.
    let replicas = 400;
    let mut mean_at_end = 0.0;
    for seed in 0..replicas {
        let out = Simulator::new(model.clone())
            .dims(dims)
            .seed(seed)
            .algorithm(Algorithm::Rsm)
            .sample_dt(0.25)
            .run_until(1.0);
        mean_at_end += *out
            .series(ZGB_SPECIES.co.id())
            .values()
            .last()
            .expect("samples");
    }
    mean_at_end /= replicas as f64;
    let exact_at_end = *exact.values().last().expect("samples");
    // Standard error of the replica mean is ~0.01; allow 3 sigma.
    assert!(
        (mean_at_end - exact_at_end).abs() < 0.03,
        "RSM ensemble {mean_at_end} vs exact ME {exact_at_end}"
    );
}

#[test]
fn vssm_matches_exact_master_equation_on_tiny_lattice() {
    let model = zgb_ziff(0.5, 2.0);
    let dims = Dims::square(2);
    let initial = Lattice::filled(dims, 0);
    let mut me = MasterEquation::new(&model, &initial);
    let exact = me.integrate(1.0, 0.005, 0.5, ZGB_SPECIES.o.id());

    let replicas = 400;
    let mut mean_at_end = 0.0;
    for seed in 0..replicas {
        let out = Simulator::new(model.clone())
            .dims(dims)
            .seed(seed + 10_000)
            .algorithm(Algorithm::Vssm)
            .sample_dt(0.5)
            .run_until(1.0);
        mean_at_end += *out
            .series(ZGB_SPECIES.o.id())
            .values()
            .last()
            .expect("samples");
    }
    mean_at_end /= replicas as f64;
    let exact_at_end = *exact.values().last().expect("samples");
    assert!(
        (mean_at_end - exact_at_end).abs() < 0.03,
        "VSSM ensemble {mean_at_end} vs exact ME {exact_at_end}"
    );
}

#[test]
fn lpndca_limit_parameters_match_rsm() {
    // Fig 8: m = 1 (L = N) and m = N (L = 1) are both exactly RSM.
    let rsm = zgb_sim(Algorithm::Rsm, 11);
    let single = zgb_sim(
        Algorithm::LPndca {
            partition: PartitionSpec::SingleChunk,
            l: 40 * 40,
            visit: ChunkVisit::SizeWeighted,
        },
        12,
    );
    let singleton = zgb_sim(
        Algorithm::LPndca {
            partition: PartitionSpec::Singletons,
            l: 1,
            visit: ChunkVisit::SizeWeighted,
        },
        13,
    );
    assert!(
        co_dev(&rsm, &single) < 0.06,
        "m=1: {}",
        co_dev(&rsm, &single)
    );
    assert!(
        co_dev(&rsm, &singleton) < 0.06,
        "m=N: {}",
        co_dev(&rsm, &singleton)
    );
}

#[test]
fn lpndca_l1_close_and_large_l_further() {
    // Fig 9: with 5 chunks, L = 1 tracks RSM; L = N deviates more. Average
    // deviation over a few seeds to tame noise.
    let mut dev_l1 = 0.0;
    let mut dev_big = 0.0;
    let seeds = 4;
    for s in 0..seeds {
        let rsm = zgb_sim(Algorithm::Rsm, 100 + s);
        let l1 = zgb_sim(
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 1,
                visit: ChunkVisit::SizeWeighted,
            },
            200 + s,
        );
        let big = zgb_sim(
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 1600,
                visit: ChunkVisit::SizeWeighted,
            },
            300 + s,
        );
        dev_l1 += co_dev(&rsm, &l1);
        dev_big += co_dev(&rsm, &big);
    }
    dev_l1 /= seeds as f64;
    dev_big /= seeds as f64;
    assert!(dev_l1 < 0.06, "L=1 deviation {dev_l1}");
    assert!(
        dev_big > dev_l1 * 0.8,
        "large L should not be much closer than L=1: {dev_big} vs {dev_l1}"
    );
}

#[test]
fn parallel_executor_matches_sequential_pndca_kinetics() {
    let seq = zgb_sim(
        Algorithm::Pndca {
            partition: PartitionSpec::FiveColoring,
            selection: ChunkSelection::InOrder,
        },
        21,
    );
    let par = zgb_sim(
        Algorithm::Parallel {
            partition: PartitionSpec::FiveColoring,
            threads: 2,
        },
        22,
    );
    assert!(
        co_dev(&seq, &par) < 0.06,
        "seq vs par: {}",
        co_dev(&seq, &par)
    );
}

#[test]
fn tpndca_rates_correct_in_expectation() {
    // The Ω×T algorithm executes a selected reaction type at EVERY enabled
    // site of a chunk, so single-run kinetics are bursty; but the marginal
    // execution rate of each type matches the ME. On a linear model
    // (independent sites) the ensemble mean must therefore match Langmuir:
    // θ(1) = 1 − e^(−1) with k_ads/K diluted so bursts are rare-but-large.
    let model = ModelBuilder::new(&["*", "A"])
        .reaction("ads", 1.0, |r| {
            r.site((0, 0), "*", "A");
        })
        .reaction("null", 99.0, |r| {
            r.site((0, 0), "*", "*");
        })
        .build();
    let replicas = 60;
    let mut mean = 0.0;
    for seed in 0..replicas {
        let out = Simulator::new(model.clone())
            .dims(Dims::square(30))
            .seed(seed)
            .algorithm(Algorithm::TPndca)
            .sample_dt(0.5)
            .run_until(1.0);
        mean += out.final_fraction(1);
    }
    mean /= replicas as f64;
    let expected = 1.0 - (-1.0f64).exp();
    assert!(
        (mean - expected).abs() < 0.05,
        "T-PNDCA ensemble mean {mean} vs Langmuir {expected}"
    );
}

#[test]
fn tpndca_on_zgb_shows_the_accuracy_trade() {
    // On the strongly nonlinear ZGB model the whole-chunk bursts interact
    // with the pair-adsorption kinetics: T-PNDCA visibly deviates from RSM
    // — the accuracy-for-parallelism trade the paper's §6 discusses. We
    // assert the run is self-consistent and that the deviation is real
    // (so regressions that silently change the algorithm get caught).
    let rsm = zgb_sim(Algorithm::Rsm, 31);
    let tp = zgb_sim(Algorithm::TPndca, 32);
    assert!(
        tp.state().coverage.matches(&tp.state().lattice),
        "coverage diverged"
    );
    let dev = co_dev(&rsm, &tp);
    assert!(
        dev > 0.02,
        "expected visible T-PNDCA bias on ZGB, measured {dev}"
    );
}
