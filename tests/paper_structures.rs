//! Structural facts from the paper, as tests: Table I, Table II, Fig 3,
//! Fig 4/5/6 and the §6 correctness criteria.

use surface_reactions::crates::ca::bca::{BlockCa, ZeroSpreadsRule};
use surface_reactions::crates::dmc::correctness::{
    always_enabled_model, TypeFrequencyCounter, WaitingTimeSampler,
};
use surface_reactions::prelude::*;

#[test]
fn table1_zgb_has_exactly_the_seven_reaction_types() {
    let model = zgb_ziff(0.5, 1.0);
    assert_eq!(model.num_reactions(), 7);
    // 1 single-site CO adsorption.
    let co_ads: Vec<_> = model
        .reactions()
        .iter()
        .filter(|r| r.arity() == 1)
        .collect();
    assert_eq!(co_ads.len(), 1);
    assert_eq!(co_ads[0].name(), "RtCO");
    // 2 O2 orientations + 4 CO+O orientations, all pair patterns.
    assert_eq!(
        model.reactions().iter().filter(|r| r.arity() == 2).count(),
        6
    );
}

#[test]
fn table2_type_partition_splits_by_orientation() {
    let model = zgb_ziff(0.5, 1.0);
    let tp = axis_type_partition(&model, Dims::square(10));
    // T0: horizontal CO+O versions (0 and 2), horizontal O2, and RtCO.
    // T1: vertical CO+O versions (1 and 3) and vertical O2.
    assert_eq!(tp.subsets[0].len(), 4);
    assert_eq!(tp.subsets[1].len(), 3);
    assert!(tp.validate(&model).is_ok());
}

#[test]
fn fig3_bca_trace_matches_paper() {
    // Initial row (Fig 3): 0 1 1 1 1 1 0 1 1; after the first 3-block
    // step: 0 0 1 1 1 1 0 0 1.
    let dims = Dims::new(9, 1);
    let mut lattice = Lattice::from_cells(dims, vec![0, 1, 1, 1, 1, 1, 0, 1, 1]);
    let mut bca = BlockCa::new(ZeroSpreadsRule, 3, 1, 1, 0);
    bca.step(&mut lattice);
    assert_eq!(lattice.cells(), &[0, 0, 1, 1, 1, 1, 0, 0, 1]);
}

#[test]
fn fig4_five_coloring_structure() {
    // A 5×5 tile has each chunk exactly once per row and per column.
    let dims = Dims::square(5);
    let p = five_coloring(dims);
    for y in 0..5 {
        let mut seen = [false; 5];
        for x in 0..5 {
            seen[p.chunk_of(dims.site_at(x, y))] = true;
        }
        assert!(seen.iter().all(|&s| s), "row {y} misses a chunk");
    }
    for x in 0..5 {
        let mut seen = [false; 5];
        for y in 0..5 {
            seen[p.chunk_of(dims.site_at(x, y))] = true;
        }
        assert!(seen.iter().all(|&s| s), "column {x} misses a chunk");
    }
}

#[test]
fn fig5_site_participates_in_four_pair_patterns() {
    // The CO+O patterns at a site s overlap it in four orientations.
    let model = zgb_ziff(0.5, 1.0);
    let pair_orientations: Vec<Offset> = model
        .reactions()
        .iter()
        .filter(|r| r.name().starts_with("RtCO+O"))
        .flat_map(|r| r.transforms().iter().map(|t| t.offset))
        .filter(|o| *o != Offset::ZERO)
        .collect();
    assert_eq!(pair_orientations.len(), 4);
}

#[test]
fn fig6_checkerboard_is_the_two_chunk_partition() {
    let dims = Dims::new(6, 4);
    let p = checkerboard(dims);
    assert_eq!(p.num_chunks(), 2);
    // Paper's P0 = {0, 2, 4, 7, 9, 11, …} on a 6-wide lattice.
    assert_eq!(p.chunk_of(Site(0)), p.chunk_of(Site(2)));
    assert_eq!(p.chunk_of(Site(0)), p.chunk_of(Site(7)));
    assert_ne!(p.chunk_of(Site(0)), p.chunk_of(Site(1)));
    assert_ne!(p.chunk_of(Site(0)), p.chunk_of(Site(6)));
}

#[test]
fn segers_criterion_1_exponential_waiting_times_for_vssm() {
    // VSSM must satisfy criterion 1 just like RSM: in the always-enabled
    // model the waiting time of type i at a site is Exp(k_i).
    let model = always_enabled_model(&[1.5]);
    let dims = Dims::square(3);
    let mut state = SimState::new(Lattice::filled(dims, 0), &model);
    let mut vssm = Vssm::new(&model, &state.lattice);
    let mut rng = rng_from_seed(5);
    let mut probe = WaitingTimeSampler::new(Site(4), 0);
    vssm.run_until(&mut state, &mut rng, 2000.0, None, &mut probe);
    assert!(probe.samples.len() > 1000);
    let ks = probe.ks_against(1.5);
    assert!(ks.accepts(0.01), "KS scaled statistic {}", ks.scaled);
}

#[test]
fn segers_criterion_2_rate_ratios_for_pndca() {
    // PNDCA also selects reaction types with k_i/K per trial, so in the
    // always-enabled model criterion 2 holds for it as well.
    let model = always_enabled_model(&[1.0, 3.0]);
    let dims = Dims::square(10);
    let partition = five_coloring(dims);
    let mut state = SimState::new(Lattice::filled(dims, 0), &model);
    let mut rng = rng_from_seed(6);
    let mut counter = TypeFrequencyCounter::new(model.num_reactions());
    surface_reactions::crates::ca::pndca::Pndca::new(&model, &partition).run_steps(
        &mut state,
        &mut rng,
        100,
        None,
        &mut counter,
    );
    let dev = counter.max_deviation_from(&model);
    assert!(dev < 0.01, "type frequency deviation {dev}");
}

#[test]
fn ndca_violates_criterion_1_waiting_time_shape() {
    // The paper (§4): NDCA site selection "introduces biases". In the
    // always-enabled single-type model, NDCA fires a site exactly once per
    // step — deterministic waiting times, maximally non-exponential.
    let model = always_enabled_model(&[2.0]);
    let dims = Dims::square(4);
    let mut state = SimState::new(Lattice::filled(dims, 0), &model);
    let mut rng = rng_from_seed(7);
    let mut probe = WaitingTimeSampler::new(Site(3), 0);
    surface_reactions::crates::ca::ndca::Ndca::new(&model)
        .run_steps(&mut state, &mut rng, 400, None, &mut probe);
    assert!(probe.samples.len() > 300);
    let ks = probe.ks_against(2.0);
    assert!(
        !ks.accepts(0.01),
        "NDCA waiting times must NOT look exponential (KS scaled {})",
        ks.scaled
    );
}
