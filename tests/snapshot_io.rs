//! Checkpoint/restore: a simulation state survives a snapshot round trip
//! and resumes identically.

use surface_reactions::crates::lattice::io;
use surface_reactions::prelude::*;

#[test]
fn snapshot_roundtrip_preserves_simulation_state() {
    let model = zgb_ziff(0.45, 5.0);
    let out = Simulator::new(model.clone())
        .dims(Dims::square(20))
        .seed(3)
        .sample_dt(1.0)
        .run_until(3.0);

    let text = io::to_text(&out.state().lattice);
    let restored = io::from_text(&text).expect("parse snapshot");
    assert_eq!(restored, out.state().lattice);
}

#[test]
fn resumed_simulation_continues_from_checkpoint() {
    let model = zgb_ziff(0.45, 5.0);
    // Phase 1: run to t = 2 and checkpoint.
    let phase1 = Simulator::new(model.clone())
        .dims(Dims::square(20))
        .seed(5)
        .sample_dt(0.5)
        .run_until(2.0);
    let checkpoint = io::to_text(&phase1.state().lattice);

    // Phase 2: restore and continue; the restored state must be accepted
    // as an initial lattice and evolve sensibly.
    let restored = io::from_text(&checkpoint).expect("parse");
    let phase2 = Simulator::new(model)
        .dims(Dims::square(20))
        .seed(6)
        .initial_lattice(restored.clone())
        .sample_dt(0.5)
        .run_until(2.0);
    // The first sample of phase 2 equals the checkpointed coverage.
    let co_at_start = phase2.series(1).values()[0];
    let expected = restored.fraction(1);
    assert!((co_at_start - expected).abs() < 1e-12);
    assert!(phase2.stats().trials > 0);
    assert!(phase2.state().coverage.matches(&phase2.state().lattice));
}

#[test]
fn snapshot_file_roundtrip_through_disk() {
    let model = zgb_ziff(0.5, 3.0);
    let out = Simulator::new(model)
        .dims(Dims::square(15))
        .seed(9)
        .sample_dt(1.0)
        .run_until(2.0);
    let path = std::env::temp_dir().join("psr_integration_snapshot.txt");
    io::save(&out.state().lattice, &path).expect("save");
    let loaded = io::load(&path).expect("load");
    assert_eq!(loaded, out.state().lattice);
}
