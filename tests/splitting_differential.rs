//! Differential suite for the fractional-step operator-splitting executor
//! (`psr_ca::splitting`), pinning its three load-bearing contracts:
//!
//! - **degeneracy** — with a single block the fractional-step loop *is*
//!   plain VSSM: same lattice, same event times (to the bit), same final
//!   clock, under either schedule;
//! - **consistency** — as `Δt → 0` the Lie scheme converges to DMC
//!   observables (TOST equivalence on ZGB coverages), and at a matched
//!   coarse `Δt` the Strang composition's `O(Δt²)` bias is smaller than
//!   Lie's `O(Δt)` bias on a fixture with a nonzero commutator between
//!   block generators;
//! - **determinism** — the trajectory is a pure function of
//!   `(seed, partition, schedule, window)`: splitting a run into separate
//!   `run_windows` calls, or resuming a fresh executor at a window
//!   boundary, changes nothing, and the compiled-kernel and naive
//!   matching arms agree bit for bit (property-tested over random models,
//!   block grids and windows).

use proptest::prelude::*;
use surface_reactions::crates::ca::splitting::FS_STREAM_NAMESPACE;
use surface_reactions::crates::dmc::events::{Event, EventHook, NoHook};
use surface_reactions::crates::stats::{tost_mean_difference, Verdict};
use surface_reactions::prelude::*;

/// Records `(time bits, site, reaction)` per executed event — bit equality
/// of two recordings means the trajectories are the *same*, not similar.
#[derive(Default)]
struct RecordEvents(Vec<(u64, u32, usize)>);

impl EventHook for RecordEvents {
    fn on_event(&mut self, event: Event) {
        self.0
            .push((event.time.to_bits(), event.site.0, event.reaction));
    }
}

#[test]
fn single_chunk_fskmc_is_bit_identical_to_plain_vssm() {
    let model = zgb_ziff(0.5, 4.0);
    let dims = Dims::square(12);
    let plan = SplitPlan::new(dims, 1, 1, model.interaction_radius()).expect("plan");
    let window = 0.3;
    let windows = 10u64;
    let seed = 99;

    for schedule in [Schedule::Lie, Schedule::Strang] {
        let mut fs_state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut fs_events = RecordEvents::default();
        let mut exec = FractionalStepKmc::new(&model, &plan, schedule, window, seed);
        assert_eq!(exec.slots_per_window(), 1, "one group degenerates to Lie");
        exec.run_windows(&mut fs_state, windows, None, &mut fs_events);

        // Reference: plain VSSM, restarted at every window boundary on the
        // identical `(window, slot 0, block 0)` RNG stream. The stream
        // keying is the public contract (`FractionalStepKmc::stream`), and
        // the factory salt is `FS_STREAM_NAMESPACE`.
        let factory = StreamFactory::new(seed ^ FS_STREAM_NAMESPACE);
        let mut ref_state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut ref_events = RecordEvents::default();
        for w in 0..windows {
            let mut rng = factory.stream(w);
            let mut vssm = Vssm::new(&model, &ref_state.lattice);
            ref_state.time = window * w as f64;
            vssm.run_until(
                &mut ref_state,
                &mut rng,
                window * (w + 1) as f64,
                None,
                &mut ref_events,
            );
        }

        assert!(!fs_events.0.is_empty(), "{schedule}: no events executed");
        assert_eq!(
            fs_events.0, ref_events.0,
            "{schedule}: event sequence diverged from plain VSSM"
        );
        assert_eq!(fs_state.lattice, ref_state.lattice, "{schedule}");
        assert_eq!(fs_state.time.to_bits(), ref_state.time.to_bits());
    }
}

/// Tail-mean CO coverage of one 40×40 ZGB replica (same job shape as the
/// validate tier's statistical arm).
fn zgb_tail_theta_co(algorithm: Algorithm, seed: u64) -> f64 {
    let out = Simulator::new(zgb_ziff(0.5, 10.0))
        .dims(Dims::square(40))
        .seed(seed)
        .algorithm(algorithm)
        .sample_dt(0.25)
        .run_until(6.0);
    out.series(1).after(3.0).mean().expect("tail samples")
}

#[test]
fn small_window_lie_converges_to_dmc_observables() {
    // Δt → 0 consistency: at a fine window even the first-order Lie
    // scheme must be statistically equivalent to the DMC reference.
    let replicas = 10u64;
    let dmc: Vec<f64> = (0..replicas)
        .map(|i| zgb_tail_theta_co(Algorithm::Rsm, 100 + i))
        .collect();
    let lie = Algorithm::Fskmc {
        gx: 2,
        gy: 2,
        schedule: Schedule::Lie,
        window: 0.05,
    };
    let fskmc: Vec<f64> = (0..replicas)
        .map(|i| zgb_tail_theta_co(lie.clone(), 200 + i))
        .collect();
    let tost = tost_mean_difference(&dmc, &fskmc, 0.03, 0.05);
    assert_eq!(
        tost.verdict,
        Verdict::Equivalent,
        "diff = {:+.4}, CI [{:+.4}, {:+.4}]",
        tost.diff,
        tost.ci_lo,
        tost.ci_hi
    );
}

/// Ensemble mean of the final CO coverage under one splitting config.
fn mean_final_theta_co(
    model: &Model,
    dims: Dims,
    grid: (u32, u32),
    schedule: Schedule,
    window: f64,
    replicas: u64,
    seed0: u64,
) -> f64 {
    let plan = SplitPlan::new(dims, grid.0, grid.1, model.interaction_radius()).expect("plan");
    let mut acc = 0.0;
    for i in 0..replicas {
        let mut state = SimState::new(Lattice::filled(dims, 0), model);
        FractionalStepKmc::new(model, &plan, schedule, window, seed0 + i).run_until(
            &mut state,
            3.0,
            None,
            &mut NoHook,
        );
        acc += state.coverage.fraction(1);
    }
    acc / replicas as f64
}

#[test]
fn strang_error_is_below_lie_error_at_a_matched_coarse_window() {
    // The fixture needs a nonzero commutator between block generators —
    // ZGB's dimer adsorption and CO+O reaction straddle block boundaries,
    // and a 4×4 grid on a 12×12 lattice makes boundary sites the majority,
    // so at Δt = 1.5 the splitting bias (Lie ≈ 0.03, Strang ≈ 0.01 in CO
    // coverage) dominates the ensemble-mean noise (SE ≈ 0.004 at 128
    // replicas).
    let model = zgb_ziff(0.5, 8.0);
    let dims = Dims::square(12);
    let replicas = 128;
    // A single block is exact KMC whatever the window: the unbiased
    // reference for both schedules.
    let exact = mean_final_theta_co(&model, dims, (1, 1), Schedule::Lie, 1.5, replicas, 9000);
    let lie = mean_final_theta_co(&model, dims, (4, 4), Schedule::Lie, 1.5, replicas, 1000);
    let strang = mean_final_theta_co(&model, dims, (4, 4), Schedule::Strang, 1.5, replicas, 2000);
    let (err_lie, err_strang) = ((lie - exact).abs(), (strang - exact).abs());
    assert!(
        err_strang < err_lie,
        "Strang error {err_strang:.4} not below Lie error {err_lie:.4} \
         (exact {exact:.4}, lie {lie:.4}, strang {strang:.4})"
    );
}

#[test]
fn trajectories_are_pure_functions_of_seed_partition_and_schedule() {
    let model = zgb_ziff(0.5, 4.0);
    let dims = Dims::square(12);
    let plan = SplitPlan::new(dims, 2, 2, model.interaction_radius()).expect("plan");
    for schedule in [Schedule::Lie, Schedule::Strang] {
        // One uninterrupted run of 10 windows...
        let mut whole = SimState::new(Lattice::filled(dims, 0), &model);
        let mut whole_events = RecordEvents::default();
        FractionalStepKmc::new(&model, &plan, schedule, 0.2, 5).run_windows(
            &mut whole,
            10,
            None,
            &mut whole_events,
        );

        // ...must match the same executor driven in two calls...
        let mut split = SimState::new(Lattice::filled(dims, 0), &model);
        let mut split_events = RecordEvents::default();
        let mut exec = FractionalStepKmc::new(&model, &plan, schedule, 0.2, 5);
        exec.run_windows(&mut split, 3, None, &mut split_events);
        exec.run_windows(&mut split, 7, None, &mut split_events);
        assert_eq!(whole_events.0, split_events.0, "{schedule}: split run");
        assert_eq!(whole.lattice, split.lattice);
        assert_eq!(whole.time.to_bits(), split.time.to_bits());

        // ...and a *fresh* executor resumed at a window boundary with
        // nothing but (lattice, window index) — the checkpoint contract.
        let mut resumed = SimState::new(Lattice::filled(dims, 0), &model);
        let mut resumed_events = RecordEvents::default();
        FractionalStepKmc::new(&model, &plan, schedule, 0.2, 5).run_windows(
            &mut resumed,
            4,
            None,
            &mut resumed_events,
        );
        let mut second = FractionalStepKmc::new(&model, &plan, schedule, 0.2, 5);
        second.set_start_window(4);
        second.run_windows(&mut resumed, 6, None, &mut resumed_events);
        assert_eq!(whole_events.0, resumed_events.0, "{schedule}: resume");
        assert_eq!(whole.lattice, resumed.lattice);
        assert_eq!(whole.time.to_bits(), resumed.time.to_bits());
    }
}

/// A random model whose patterns are single sites or von Neumann pairs
/// (interaction radius ≤ 1), the same family the CA property tests use.
fn model_strategy() -> impl Strategy<Value = Model> {
    prop::collection::vec(
        (
            prop::bool::ANY,                  // pair?
            0u32..4,                          // orientation
            (0u8..3, 0u8..3, 0u8..3, 0u8..3), // src/tgt for both sites
            0.01f64..5.0,
        ),
        1..6,
    )
    .prop_map(|specs| {
        let names = ["*", "A", "B"];
        let mut b = ModelBuilder::new(&names);
        for (i, (pair, orient, (s0, t0, s1, t1), rate)) in specs.into_iter().enumerate() {
            let name = format!("r{i}");
            b = b.reaction(name, rate, |r| {
                r.site((0, 0), names[s0 as usize], names[t0 as usize]);
                if pair {
                    let off = match orient {
                        0 => (1, 0),
                        1 => (0, 1),
                        2 => (-1, 0),
                        _ => (0, -1),
                    };
                    r.site(off, names[s1 as usize], names[t1 as usize]);
                }
            });
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Over random models × block grids × windows × schedules: the
    // compiled-kernel and naive arms agree bit for bit, a split run
    // equals an uninterrupted one, window boundaries are pure functions
    // of the window index, and the incremental coverage stays consistent
    // with the lattice.
    #[test]
    fn fskmc_invariants_hold_for_random_models_partitions_and_windows(
        model in model_strategy(),
        grid_idx in 0usize..4,
        window in 0.05f64..0.8,
        strang in prop::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let grid = [(1u32, 1u32), (2, 1), (2, 2), (4, 2)][grid_idx];
        let schedule = if strang { Schedule::Strang } else { Schedule::Lie };
        let dims = Dims::square(12);
        let plan = SplitPlan::new(dims, grid.0, grid.1, model.interaction_radius())
            .expect("12 is divisible by 1, 2 and 4; sides exceed 2·radius");
        let windows = 4u64;

        let run = |naive: bool, split: bool| {
            let mut state = SimState::new(Lattice::filled(dims, 0), &model);
            let mut events = RecordEvents::default();
            let mut exec = FractionalStepKmc::new(&model, &plan, schedule, window, seed)
                .with_naive_matching(naive);
            if split {
                exec.run_windows(&mut state, 1, None, &mut events);
                exec.run_windows(&mut state, windows - 1, None, &mut events);
            } else {
                exec.run_windows(&mut state, windows, None, &mut events);
            }
            (state, events.0)
        };

        let (compiled, compiled_events) = run(false, false);
        let (naive, naive_events) = run(true, false);
        let (split, split_events) = run(false, true);

        prop_assert_eq!(&compiled_events, &naive_events, "compiled vs naive");
        prop_assert_eq!(&compiled.lattice, &naive.lattice);
        prop_assert_eq!(&compiled_events, &split_events, "whole vs split run");
        prop_assert_eq!(&compiled.lattice, &split.lattice);
        prop_assert_eq!(compiled.time.to_bits(), (window * windows as f64).to_bits());
        prop_assert!(compiled.coverage.matches(&compiled.lattice));
    }
}
