//! The Kuzovkov Pt(100) model must oscillate — the property all of the
//! paper's §6 experiments (Figs 8–10) are built on.
//!
//! Two layers, deliberately separated:
//!
//! - the *unit-level* period/amplitude assertions run on committed
//!   fixture trajectories (`tests/fixtures/*.csv`), so the calibrated
//!   ranges test the peak detector — not the wall-clock-sensitive
//!   combination of a fresh simulation and tight thresholds;
//! - the *live* simulations assert only the robust indicator (does the
//!   trajectory oscillate at all), which is stable across seeds.
//!
//! Regenerate the fixtures after an intentional model or RNG change:
//! `cargo test --test oscillation regenerate_fixtures -- --ignored`.

use surface_reactions::prelude::*;

fn co_series(algorithm: Algorithm, seed: u64, side: u32, t_end: f64) -> TimeSeries {
    let out = Simulator::new(kuzovkov_model(KuzovkovParams::default()))
        .dims(Dims::square(side))
        .seed(seed)
        .algorithm(algorithm)
        .sample_dt(0.5)
        .run_until(t_end);
    out.combined_series(&[KUZOVKOV_SPECIES.hex_co.id(), KUZOVKOV_SPECIES.sq_co.id()])
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture(name: &str) -> TimeSeries {
    let path = fixture_path(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e} (run regenerate_fixtures?)", path.display()));
    TimeSeries::from_csv(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()))
}

/// The trajectories behind the fixtures: (file, algorithm, seed, side,
/// t_end). Keep in sync with the fixture-based tests below.
fn fixture_specs() -> Vec<(&'static str, Algorithm, u64, u32, f64)> {
    vec![
        ("kuzovkov_rsm_co.csv", Algorithm::Rsm, 7, 40, 150.0),
        (
            "kuzovkov_lpndca_l1_co.csv",
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 1,
                visit: ChunkVisit::SizeWeighted,
            },
            8,
            35,
            120.0,
        ),
    ]
}

#[test]
fn rsm_fixture_oscillates_with_calibrated_period() {
    let co = fixture("kuzovkov_rsm_co.csv");
    let t_end = co.end().expect("non-empty fixture");
    let osc = detect_peaks(&co.after(t_end * 0.25), 5, 0.04);
    assert!(
        osc.is_oscillating(2, 0.04),
        "no oscillation: {} peaks, amplitude {:?}",
        osc.peak_times.len(),
        osc.amplitude
    );
    let period = osc.period.expect("at least two peaks");
    assert!(
        (10.0..80.0).contains(&period),
        "period {period} outside the calibrated range"
    );
    let amplitude = osc.amplitude.expect("amplitude");
    assert!(
        (0.04..0.5).contains(&amplitude),
        "amplitude {amplitude} outside the calibrated range"
    );
}

#[test]
fn lpndca_l1_fixture_matches_the_rsm_period() {
    // Fig 9a as a test: L = 1 on the five-chunk partition keeps both
    // the oscillation and its time scale.
    let rsm = fixture("kuzovkov_rsm_co.csv");
    let lp = fixture("kuzovkov_lpndca_l1_co.csv");
    let detect = |co: &TimeSeries| {
        let t_end = co.end().expect("non-empty fixture");
        detect_peaks(&co.after(t_end * 0.25), 5, 0.04)
    };
    let rsm_osc = detect(&rsm);
    let lp_osc = detect(&lp);
    assert!(
        lp_osc.is_oscillating(2, 0.04),
        "L-PNDCA (L=1) lost the oscillation: {} peaks",
        lp_osc.peak_times.len()
    );
    let rsm_period = rsm_osc.period.expect("RSM period");
    let lp_period = lp_osc.period.expect("L-PNDCA period");
    assert!(
        (lp_period - rsm_period).abs() < 0.6 * rsm_period,
        "periods diverged: RSM {rsm_period} vs L-PNDCA {lp_period}"
    );
}

#[test]
fn fixtures_round_trip_bit_for_bit() {
    // Guards the CSV codec contract the fixtures rely on: parsing and
    // re-serialising a committed fixture must reproduce it exactly.
    for (name, ..) in fixture_specs() {
        let text = std::fs::read_to_string(fixture_path(name)).expect("fixture exists");
        let series = TimeSeries::from_csv(&text).expect("fixture parses");
        assert_eq!(series.to_csv(), text, "{name} does not round-trip");
    }
}

#[test]
fn default_parameters_oscillate_under_rsm() {
    // Live simulation: only the robust indicator, no tight ranges
    // (those live in the fixture tests above).
    let t_end = 150.0;
    let co = co_series(Algorithm::Rsm, 7, 40, t_end);
    let osc = detect_peaks(&co.after(t_end * 0.25), 5, 0.04);
    assert!(
        osc.is_oscillating(2, 0.04),
        "no oscillation: {} peaks, amplitude {:?}",
        osc.peak_times.len(),
        osc.amplitude
    );
}

#[test]
fn random_once_preserves_the_oscillation_at_maximal_l() {
    // Fig 10 as a test: all chunks once per step in random order with
    // L = N/m keeps the oscillation alive.
    let t_end = 120.0;
    let side = 35u32;
    let co = co_series(
        Algorithm::LPndca {
            partition: PartitionSpec::FiveColoring,
            l: (side * side / 5) as usize,
            visit: ChunkVisit::RandomOnce,
        },
        9,
        side,
        t_end,
    );
    let osc = detect_peaks(&co.after(t_end * 0.25), 5, 0.04);
    assert!(
        osc.is_oscillating(2, 0.04),
        "random-once L-PNDCA lost the oscillation: {} peaks",
        osc.peak_times.len()
    );
}

#[test]
#[ignore = "regenerates tests/fixtures/*.csv from fresh simulations"]
fn regenerate_fixtures() {
    for (name, algorithm, seed, side, t_end) in fixture_specs() {
        let co = co_series(algorithm, seed, side, t_end);
        let path = fixture_path(name);
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixtures dir");
        std::fs::write(&path, co.to_csv()).expect("write fixture");
        println!("wrote {} ({} points)", path.display(), co.len());
    }
}
