//! The Kuzovkov Pt(100) model must oscillate — the property all of the
//! paper's §6 experiments (Figs 8–10) are built on. Kept at a modest
//! lattice/time so it stays affordable in debug builds.

use surface_reactions::prelude::*;

fn co_series(algorithm: Algorithm, seed: u64, side: u32, t_end: f64) -> TimeSeries {
    let out = Simulator::new(kuzovkov_model(KuzovkovParams::default()))
        .dims(Dims::square(side))
        .seed(seed)
        .algorithm(algorithm)
        .sample_dt(0.5)
        .run_until(t_end);
    out.combined_series(&[KUZOVKOV_SPECIES.hex_co.id(), KUZOVKOV_SPECIES.sq_co.id()])
}

#[test]
fn default_parameters_oscillate_under_rsm() {
    let t_end = 150.0;
    let co = co_series(Algorithm::Rsm, 7, 40, t_end);
    let osc = detect_peaks(&co.after(t_end * 0.25), 5, 0.04);
    assert!(
        osc.is_oscillating(2, 0.04),
        "no oscillation: {} peaks, amplitude {:?}",
        osc.peak_times.len(),
        osc.amplitude
    );
    let period = osc.period.expect("at least two peaks");
    assert!(
        (10.0..80.0).contains(&period),
        "period {period} outside the calibrated range"
    );
}

#[test]
fn lpndca_l1_preserves_the_oscillation() {
    // Fig 9a as a test: L = 1 on the five-chunk partition must keep
    // oscillating like RSM does.
    let t_end = 120.0;
    let co = co_series(
        Algorithm::LPndca {
            partition: PartitionSpec::FiveColoring,
            l: 1,
            visit: ChunkVisit::SizeWeighted,
        },
        8,
        35,
        t_end,
    );
    let osc = detect_peaks(&co.after(t_end * 0.25), 5, 0.04);
    assert!(
        osc.is_oscillating(2, 0.04),
        "L-PNDCA (L=1) lost the oscillation: {} peaks",
        osc.peak_times.len()
    );
}

#[test]
fn random_once_preserves_the_oscillation_at_maximal_l() {
    // Fig 10 as a test: all chunks once per step in random order with
    // L = N/m keeps the oscillation alive.
    let t_end = 120.0;
    let side = 35u32;
    let co = co_series(
        Algorithm::LPndca {
            partition: PartitionSpec::FiveColoring,
            l: (side * side / 5) as usize,
            visit: ChunkVisit::RandomOnce,
        },
        9,
        side,
        t_end,
    );
    let osc = detect_peaks(&co.after(t_end * 0.25), 5, 0.04);
    assert!(
        osc.is_oscillating(2, 0.04),
        "random-once L-PNDCA lost the oscillation: {} peaks",
        osc.peak_times.len()
    );
}
