//! Demonstrations of the CA biases the paper warns about (§4): the NDCA
//! "gives degenerate results for some systems (Ising models, Single-File
//! models)". For single-file diffusion the degeneracy is quantitative:
//! a particle that hops onto a not-yet-visited site is visited *again*
//! within the same CA step, so hops cascade and the per-step mean squared
//! displacement doubles relative to the Master-Equation value.

use surface_reactions::crates::ca::ndca::{Ndca, SweepOrder};
use surface_reactions::crates::dmc::events::NoHook;
use surface_reactions::crates::model::library::diffusion::single_file_model;
use surface_reactions::prelude::*;

const WIDTH: i64 = 101;

fn particle_position(lattice: &Lattice) -> i64 {
    for (site, state) in lattice.iter() {
        if state == 1 {
            return lattice.dims().coord(site).x;
        }
    }
    panic!("particle lost");
}

fn unwrap_delta(new: i64, old: i64) -> i64 {
    let mut delta = new - old;
    if delta > WIDTH / 2 {
        delta -= WIDTH;
    } else if delta < -(WIDTH / 2) {
        delta += WIDTH;
    }
    delta
}

/// (net displacement, summed squared per-step displacement) of a single
/// tracer over `steps` steps of the given stepper.
fn tracer_stats(
    mut step_fn: impl FnMut(&mut SimState, &mut SimRng),
    seed: u64,
    steps: u64,
) -> (i64, f64) {
    let model = single_file_model(1.0);
    let dims = Dims::new(WIDTH as u32, 1);
    let mut lattice = Lattice::filled(dims, 0);
    lattice.set(dims.site_at(WIDTH / 2, 0), 1);
    let mut state = SimState::new(lattice, &model);
    let mut rng = rng_from_seed(seed);
    let mut pos = WIDTH / 2;
    let mut drift = 0i64;
    let mut msd = 0.0;
    for _ in 0..steps {
        step_fn(&mut state, &mut rng);
        let new_pos = particle_position(&state.lattice);
        let delta = unwrap_delta(new_pos, pos);
        drift += delta;
        msd += (delta * delta) as f64;
        pos = new_pos;
    }
    (drift, msd)
}

fn ndca_stats(order: SweepOrder, seed: u64, steps: u64) -> (i64, f64) {
    let model = single_file_model(1.0);
    let mut ndca = Ndca::new(&model).with_order(order);
    tracer_stats(
        move |state, rng| {
            ndca.run_steps(state, rng, 1, None, &mut NoHook);
        },
        seed,
        steps,
    )
}

fn rsm_stats(seed: u64, steps: u64) -> (i64, f64) {
    let model = single_file_model(1.0);
    let mut rsm = Rsm::new(&model);
    tracer_stats(
        move |state, rng| {
            rsm.run_mc_steps(state, rng, 1, None, &mut NoHook);
        },
        seed,
        steps,
    )
}

#[test]
fn ndca_doubles_single_file_diffusion() {
    // Per CA step the tracer's squared displacement satisfies
    // E[X²] = 1 + E[X²]/2 → 2 (each hop has probability 1/2 of cascading
    // onto a not-yet-visited site), while one RSM MC step gives E[X²] = 1.
    let runs = 25;
    let steps = 400;
    let mut ndca_msd = 0.0;
    let mut rsm_msd = 0.0;
    for seed in 0..runs {
        ndca_msd += ndca_stats(SweepOrder::RowMajor, seed, steps).1;
        rsm_msd += rsm_stats(seed, steps).1;
    }
    let total_steps = (runs * steps) as f64;
    let ndca_per_step = ndca_msd / total_steps;
    let rsm_per_step = rsm_msd / total_steps;
    assert!(
        (rsm_per_step - 1.0).abs() < 0.15,
        "RSM per-step MSD should be ≈1, got {rsm_per_step}"
    );
    assert!(
        (ndca_per_step - 2.0).abs() < 0.3,
        "NDCA per-step MSD should be ≈2 (cascade degeneracy), got {ndca_per_step}"
    );
    assert!(
        ndca_per_step / rsm_per_step > 1.5,
        "NDCA must visibly inflate diffusion: {ndca_per_step} vs {rsm_per_step}"
    );
}

#[test]
fn ndca_has_no_systematic_drift_despite_cascades() {
    // The cascade is direction-symmetric, so the *mean* displacement stays
    // zero for both sweep orders — the bias hides in the second moment.
    for order in [SweepOrder::RowMajor, SweepOrder::Shuffled] {
        let mut total = 0i64;
        let runs = 20;
        let steps = 300;
        for seed in 0..runs {
            total += ndca_stats(order, seed + 100, steps).0;
        }
        // Per-step variance 2 → stdev of the total ≈ sqrt(20·300·2) ≈ 110.
        assert!(
            total.abs() < 550,
            "{order:?}: drift {total} exceeds 5 sigma"
        );
    }
}

#[test]
fn rsm_tracer_is_unbiased() {
    let mut total = 0i64;
    for seed in 0..20 {
        total += rsm_stats(seed + 300, 300).0;
    }
    assert!(total.abs() < 400, "RSM drift {total} exceeds 5 sigma");
}
